package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5}, 5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		got, err := Median(c.in)
		if err != nil || got != c.want {
			t.Errorf("Median(%v) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty median must error")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestMaxMeanStdDev(t *testing.T) {
	if m, err := Max([]float64{1, 9, 4}); err != nil || m != 9 {
		t.Fatalf("Max = %v %v", m, err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty max must error")
	}
	if m, err := Mean([]float64{1, 2, 3}); err != nil || m != 2 {
		t.Fatalf("Mean = %v %v", m, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty mean must error")
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || math.Abs(sd-2) > 1e-12 {
		t.Fatalf("StdDev = %v %v, want 2", sd, err)
	}
	if _, err := StdDev(nil); err == nil {
		t.Fatal("empty stddev must error")
	}
}

func TestFoldedNormal(t *testing.T) {
	// Median of the folded normal must satisfy CDF(median) = 1/2.
	sigma := 2.5
	med := FoldedNormalMedian(sigma)
	if math.Abs(FoldedNormalCDF(med, sigma)-0.5) > 1e-12 {
		t.Fatalf("CDF(median) = %v", FoldedNormalCDF(med, sigma))
	}
	// Paper: median ≈ 0.675σ.
	if math.Abs(med/sigma-0.6745) > 1e-3 {
		t.Fatalf("median/σ = %v, want ≈0.6745", med/sigma)
	}
	if FoldedNormalCDF(-1, 1) != 0 {
		t.Fatal("negative x must have CDF 0")
	}
	if FoldedNormalCDF(1, 0) != 1 || FoldedNormalCDF(-1, 0) != 0 {
		t.Fatal("degenerate sigma must collapse to a step")
	}
}

func TestDeriveThreshold(t *testing.T) {
	// Paper §IV-A: 3σ / 0.675σ ≈ 4.4, default T = 4.5 just above it.
	d := DeriveThreshold()
	if d < 4.4 || d > 4.5 {
		t.Fatalf("derived threshold = %v, want in (4.4, 4.5)", d)
	}
	if DefaultThreshold <= d {
		t.Fatalf("default threshold %v must exceed derived %v", DefaultThreshold, d)
	}
}

func TestDerivedThresholdEmpirically(t *testing.T) {
	// Under pure folded-normal noise the anomaly index max/median must
	// rarely exceed the derived threshold (three-sigma rule: ~0.3% per
	// element). With 100 elements per trial, allow a modest excess rate.
	rng := rand.New(rand.NewSource(11))
	exceed := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = math.Abs(rng.NormFloat64())
		}
		mx, _ := Max(xs)
		md, _ := Median(xs)
		if mx/md > DefaultThreshold {
			exceed++
		}
	}
	// Expected exceedance: P(max of 100 folded normals > 4.5*median).
	// Empirically ~20-30%; the point of the paper's threshold is that a
	// genuine anomaly pushes AI far beyond 4.5, not that noise never
	// crosses it. Assert it is not degenerate in either direction.
	if exceed == trials {
		t.Fatalf("threshold always exceeded under noise (%d/%d)", exceed, trials)
	}
}

func TestEvaluateConfusion(t *testing.T) {
	samples := []Sample{
		{Score: 10, Positive: true},  // TP
		{Score: 10, Positive: false}, // FP
		{Score: 1, Positive: true},   // FN
		{Score: 1, Positive: false},  // TN
	}
	c := Evaluate(samples, 4.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.TPR() != 0.5 || c.FPR() != 0.5 || c.Precision() != 0.5 || c.Accuracy() != 0.5 {
		t.Fatalf("metrics: tpr=%v fpr=%v prec=%v acc=%v", c.TPR(), c.FPR(), c.Precision(), c.Accuracy())
	}
	var zero Confusion
	if zero.TPR() != 0 || zero.FPR() != 0 || zero.Precision() != 0 || zero.Accuracy() != 0 {
		t.Fatal("empty confusion metrics must be 0, not NaN")
	}
}

func TestROCAndAUC(t *testing.T) {
	// Perfectly separable scores must yield AUC 1.
	var samples []Sample
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{Score: 10 + float64(i), Positive: true})
		samples = append(samples, Sample{Score: float64(i) / 10, Positive: false})
	}
	points := ROC(samples, LinSpace(0, 100, 101))
	if auc := AUC(points); auc < 0.999 {
		t.Fatalf("separable AUC = %v, want ~1", auc)
	}
	// Random scores must be near 0.5.
	rng := rand.New(rand.NewSource(4))
	var random []Sample
	for i := 0; i < 4000; i++ {
		random = append(random, Sample{Score: rng.Float64(), Positive: rng.Intn(2) == 0})
	}
	pts := ROC(random, LinSpace(0, 1, 101))
	if auc := AUC(pts); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 500; i++ {
		s := Sample{Positive: rng.Intn(2) == 0}
		if s.Positive {
			s.Score = rng.NormFloat64() + 2
		} else {
			s.Score = rng.NormFloat64()
		}
		samples = append(samples, s)
	}
	pts := ROC(samples, LinSpace(-5, 8, 200))
	// As the threshold rises, TPR and FPR must both be non-increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR > pts[i-1].TPR+1e-12 || pts[i].FPR > pts[i-1].FPR+1e-12 {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v", xs)
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("LinSpace n=1 = %v", got)
	}
}

func TestPropertyMedianWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(30))
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		med, err := Median(xs)
		if err != nil {
			return false
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return med >= sorted[0] && med <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAUCBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{Score: r.Float64() * 10, Positive: r.Intn(2) == 0}
		}
		auc := AUC(ROC(samples, LinSpace(0, 10, 50)))
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianIntoMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scratch := make([]float64, 0)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			// Duplicates included to exercise equal-pivot partitions.
			xs[i] = float64(rng.Intn(10))
		}
		ref := make([]float64, n)
		copy(ref, xs)
		sort.Float64s(ref)
		var want float64
		if n%2 == 1 {
			want = ref[n/2]
		} else {
			want = (ref[n/2-1] + ref[n/2]) / 2
		}
		got, err := MedianInto(scratch, xs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: MedianInto(%v) = %v, want %v", trial, xs, got, want)
		}
		quick, err := Median(xs)
		if err != nil {
			t.Fatal(err)
		}
		if quick != want {
			t.Fatalf("trial %d: Median(%v) = %v, want %v", trial, xs, quick, want)
		}
		// Grow the reusable scratch like a hot loop would.
		if len(scratch) < n {
			scratch = make([]float64, n)
		}
	}
}

func TestMedianIntoDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	scratch := make([]float64, len(xs))
	if _, err := MedianInto(scratch, xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 || xs[3] != 2 || xs[4] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianIntoEmptyAndAllocationFree(t *testing.T) {
	if _, err := MedianInto(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty input must return ErrEmpty, got %v", err)
	}
	xs := []float64{9, 3, 7, 1, 5, 2, 8, 4, 6, 0}
	scratch := make([]float64, len(xs))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := MedianInto(scratch, xs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MedianInto with adequate scratch allocates %v times, want 0", allocs)
	}
}
