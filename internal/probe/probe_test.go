package probe

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"foces/internal/controller"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

var layout = header.FiveTuple()

func setup(t *testing.T, name string) (*topo.Topology, *dataplane.Network, *fcm.FCM) {
	t.Helper()
	top, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, net, err := controller.Bootstrap(top, layout, controller.PairExact)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fcm.Generate(top, layout, ctrl.Rules())
	if err != nil {
		t.Fatal(err)
	}
	return top, net, f
}

func TestBudget(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 2}, {2, 3}, {8, 5}, {9, 6}, {1024, 12},
	}
	for _, c := range cases {
		if got := Budget(c.n); got != c.want {
			t.Errorf("Budget(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAnalyzeProbe(t *testing.T) {
	spec := Spec{
		Dst:      topo.HostID(5),
		Expected: []int{10, 11, 12, 13},
		Volume:   256,
	}
	dropSpec := spec
	dropSpec.Dst = -1
	cases := []struct {
		name    string
		spec    Spec
		obs     Observation
		clean   bool
		culprit int
		minConf float64
	}{
		{
			name:  "clean path delivers",
			spec:  spec,
			obs:   Observation{Deltas: map[int]uint64{10: 256, 11: 256, 12: 255, 13: 255}, Delivered: 255},
			clean: true,
		},
		{
			name:    "mid-path starvation blames the rule before it",
			spec:    spec,
			obs:     Observation{Deltas: map[int]uint64{10: 256, 11: 256, 12: 0}},
			culprit: 11, minConf: 0.9,
		},
		{
			name:    "first-hop starvation blames the entry rule",
			spec:    spec,
			obs:     Observation{Deltas: map[int]uint64{10: 3}},
			culprit: 10, minConf: 0.9,
		},
		{
			name:    "all counted but delivery vanished blames the last hop",
			spec:    spec,
			obs:     Observation{Deltas: map[int]uint64{10: 256, 11: 256, 12: 256, 13: 256}, Delivered: 0},
			culprit: 13, minConf: 0.9,
		},
		{
			name:  "intent-drop class skips the delivery check",
			spec:  dropSpec,
			obs:   Observation{Deltas: map[int]uint64{10: 256, 11: 256, 12: 256, 13: 256}, Delivered: 0},
			clean: true,
		},
		{
			name:  "detour that rejoins still counts downstream",
			spec:  spec,
			obs:   Observation{Deltas: map[int]uint64{10: 256, 11: 0, 12: 256, 13: 256, 99: 256}, Delivered: 256},
			clean: false, culprit: 10, minConf: 0.9,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := analyzeProbe(c.spec, c.obs)
			if v.clean != c.clean {
				t.Fatalf("clean = %v, want %v", v.clean, c.clean)
			}
			if c.clean {
				return
			}
			if v.culprit != c.culprit {
				t.Fatalf("culprit = %d, want %d", v.culprit, c.culprit)
			}
			if v.confidence < c.minConf {
				t.Fatalf("confidence = %g, want >= %g", v.confidence, c.minConf)
			}
		})
	}
}

// localizeAttack runs the full pipeline on fattree4: inject an attack,
// run monitored traffic, derive the per-rule error mass, then probe.
func localizeAttack(t *testing.T, kind dataplane.AttackKind, seed int64) (dataplane.Attack, Outcome) {
	t.Helper()
	top, net, f := setup(t, "fattree4")
	rng := rand.New(rand.NewSource(seed))
	atk, err := dataplane.RandomAttack(rng, net, kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Apply(net); err != nil {
		t.Fatal(err)
	}
	const vol = 500
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, vol)); err != nil {
		t.Fatal(err)
	}
	// Per-rule error mass in the shape core detection's Δ vector has:
	// under PairExact each rule is dedicated to one flow, so the
	// least-squares flow estimate is the path mean and the residual
	// spreads over every rule of an affected flow — including the
	// compromised rule itself, whose counter still counts.
	observed := f.CounterVector(net.CollectCounters())
	ruleErr := make([]float64, f.NumRules())
	for _, fl := range f.Flows {
		mean := 0.0
		for _, rid := range fl.RuleIDs {
			mean += observed[rid]
		}
		mean /= float64(len(fl.RuleIDs))
		for _, rid := range fl.RuleIDs {
			ruleErr[rid] = math.Abs(observed[rid] - mean)
		}
	}

	// Suspect set: the attacked switch plus innocent bystanders, the
	// shape rank localization hands over.
	suspects := []topo.SwitchID{atk.Switch}
	for _, sw := range top.Switches() {
		if sw.ID != atk.Switch && len(suspects) < 4 {
			suspects = append(suspects, sw.ID)
		}
	}
	loc, err := New(f, NewNetworkInjector(net, rand.New(rand.NewSource(seed+1))), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := loc.Localize(context.Background(), suspects, ruleErr)
	if err != nil {
		t.Fatal(err)
	}
	return atk, out
}

func TestLocalizeDropAttack(t *testing.T) {
	atk, out := localizeAttack(t, dataplane.AttackDrop, 7)
	top, ok := out.TopCulprit()
	if !ok || !out.Localized {
		t.Fatalf("drop attack not localized: %+v", out)
	}
	if top.RuleID != atk.RuleID || top.Switch != atk.Switch {
		t.Fatalf("accused rule %d on %v, want rule %d on %v", top.RuleID, top.Switch, atk.RuleID, atk.Switch)
	}
	if out.ProbesUsed > out.ProbeBudget {
		t.Fatalf("spent %d probes over budget %d", out.ProbesUsed, out.ProbeBudget)
	}
}

func TestLocalizePortSwapAttack(t *testing.T) {
	atk, out := localizeAttack(t, dataplane.AttackPortSwap, 11)
	top, ok := out.TopCulprit()
	if !ok || !out.Localized {
		t.Fatalf("port-swap attack not localized: %+v", out)
	}
	if top.RuleID != atk.RuleID || top.Switch != atk.Switch {
		t.Fatalf("accused rule %d on %v, want rule %d on %v", top.RuleID, top.Switch, atk.RuleID, atk.Switch)
	}
	if out.ProbesUsed > out.ProbeBudget {
		t.Fatalf("spent %d probes over budget %d", out.ProbesUsed, out.ProbeBudget)
	}
}

func TestLocalizeErrorWeightMeetsBudget(t *testing.T) {
	// With detection's error mass steering flow choice, the failing
	// probe lands within the first couple of picks — well inside the
	// ceil(log2 n)+2 budget even for a multi-switch suspect set.
	for _, seed := range []int64{3, 17, 29} {
		_, out := localizeAttack(t, dataplane.AttackDrop, seed)
		if !out.Localized {
			t.Fatalf("seed %d: not localized: %+v", seed, out)
		}
		if out.ProbesUsed > Budget(out.SuspectRules) {
			t.Fatalf("seed %d: %d probes for %d suspect rules, budget %d",
				seed, out.ProbesUsed, out.SuspectRules, Budget(out.SuspectRules))
		}
	}
}

func TestLocalizeCleanNetworkAccusesNobody(t *testing.T) {
	top, net, f := setup(t, "fattree4")
	rng := rand.New(rand.NewSource(5))
	if _, err := net.Run(rng, dataplane.UniformTraffic(top, 500)); err != nil {
		t.Fatal(err)
	}
	sws := top.Switches()
	suspects := []topo.SwitchID{sws[0].ID, sws[1].ID}
	loc, err := New(f, NewNetworkInjector(net, rng), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := loc.Localize(context.Background(), suspects, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Localized || len(out.Culprits) != 0 {
		t.Fatalf("clean network accused: %+v", out.Culprits)
	}
	if out.CleanProbes == 0 || out.CleanProbes != out.ProbesUsed {
		t.Fatalf("want all probes clean, got %+v", out)
	}
	if out.Exonerated == 0 {
		t.Fatal("clean probes must exonerate covered rules")
	}
}

func TestLocalizeEmptySuspectsErrors(t *testing.T) {
	_, net, f := setup(t, "fattree4")
	loc, err := New(f, NewNetworkInjector(net, rand.New(rand.NewSource(1))), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Localize(context.Background(), nil, nil); err == nil {
		t.Fatal("empty suspect set must error")
	}
}

func TestLocalizeHonorsContextCancel(t *testing.T) {
	_, net, f := setup(t, "fattree4")
	loc, err := New(f, NewNetworkInjector(net, rand.New(rand.NewSource(1))), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.Localize(ctx, []topo.SwitchID{0}, nil); err == nil {
		t.Fatal("cancelled context must abort localization")
	}
}
