// Package probe implements active-probe localization: the diagnosis
// stage that turns a detection verdict ("forwarding is anomalous, the
// error mass sits around these switches") into a ranked culprit report
// ("this rule on this switch, with this confidence"), in the style of
// Kozat et al.'s static-rule forwarding-plane diagnosis.
//
// The localizer starts from the rank-based suspect set detection
// already produces (sliced-outcome suspects, or core.AttributeDelta's
// error-mass ranking) and converts it to a suspect *rule* set: every
// rule hosted on a suspect switch that carries at least one logical
// flow. It then synthesizes test probes from the FCM's symbolic flow
// classes — each class's header space is the intersection of the
// source-pinned wildcard with every rule match along its path, so
// Space.AnyPacket() is a concrete packet guaranteed to trace the
// class's expected rule history — and injects them through an Injector
// with a per-probe deadline and an overall probe budget.
//
// Probe analysis exploits OpenFlow counter semantics: a rule's counter
// counts matches before the (possibly tampered) action runs. Walking a
// probe's expected history in path order, the first rule whose counter
// delta starves (collects less than half of what the previous hop
// counted) marks the break, and the rule immediately before it — the
// last one that counted the traffic and then misdirected or discarded
// it — is the culprit. One failing probe therefore pinpoints a rule
// exactly; clean probes exonerate every rule along their path. Probe
// selection is greedy group-testing over the remaining un-exonerated
// suspect rules, weighted by each rule's share of the detection error
// vector, so the probes bisect the suspect set: each clean probe
// removes the covered portion, and the expected probe count to a
// confirmed culprit stays within ceil(log2(suspect rules)) + 2.
package probe

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"foces/internal/fcm"
	"foces/internal/header"
	"foces/internal/topo"
)

// Default configuration values.
const (
	// DefaultVolume is the per-probe packet count. Large enough that
	// per-link loss cannot mimic a starved counter (a hop would need to
	// lose half the probe), small enough to be negligible next to
	// monitored traffic.
	DefaultVolume = 256
	// DefaultDeadline bounds one probe's inject-and-read round trip.
	DefaultDeadline = 2 * time.Second
	// DefaultMinConfidence is the vanished-mass fraction at which a
	// culprit accusation is considered confirmed and probing stops.
	DefaultMinConfidence = 0.5
)

// Config tunes a Localizer.
type Config struct {
	// MaxProbes caps the probes spent per localization. Zero selects
	// Budget(len(suspect rules)): ceil(log2(n)) + 2.
	MaxProbes int
	// Volume is the packet count per probe (zero selects DefaultVolume).
	Volume uint64
	// Deadline bounds each probe's inject-and-read round trip (zero
	// selects DefaultDeadline).
	Deadline time.Duration
	// MinConfidence stops probing once a culprit's confidence (the
	// fraction of probe volume that vanished at its hop) reaches this
	// value. Zero selects DefaultMinConfidence.
	MinConfidence float64
}

func (c Config) withDefaults(suspectRules int) Config {
	if c.MaxProbes <= 0 {
		c.MaxProbes = Budget(suspectRules)
	}
	if c.Volume == 0 {
		c.Volume = DefaultVolume
	}
	if c.Deadline <= 0 {
		c.Deadline = DefaultDeadline
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = DefaultMinConfidence
	}
	return c
}

// Budget is the probe budget for a suspect rule set of size n:
// ceil(log2(n)) + 2 — enough clean probes to bisect the set to one
// rule, plus the failing probe that names it, plus one spare.
func Budget(n int) int {
	if n < 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 2
}

// Spec is one synthesized test probe: a concrete packet, where to
// inject it, and the rule history it is expected to trace.
type Spec struct {
	// Flow is the FCM column the probe exercises.
	Flow int
	// Src is the host the probe enters the network from.
	Src topo.HostID
	// Dst is the host the probe should reach; -1 when the flow's
	// intended fate is no delivery (an intent drop class).
	Dst topo.HostID
	// Packet is the concrete probe header, drawn from the flow class's
	// header space.
	Packet header.Packet
	// Expected is the rule history the packet should match, in path
	// order.
	Expected []int
	// Volume is the number of probe copies to inject.
	Volume uint64
}

// Observation is what an Injector measured for one probe.
type Observation struct {
	// Deltas is the per-rule counter movement attributable to the probe,
	// keyed by global rule ID. Rules outside the expected history that
	// moved (detour evidence) are included.
	Deltas map[int]uint64
	// Delivered is how many probe copies reached Spec.Dst.
	Delivered uint64
	// Offered echoes the injected volume.
	Offered uint64
}

// Injector injects one probe into the data plane and reads back the
// counter movement it caused. Implementations must honour ctx's
// deadline (the per-probe deadline from Config). The dataplane-backed
// implementation lives in this package (NetworkInjector); an
// OpenFlow-channel implementation would inject via PacketOut and read
// deltas via paired flow-stats requests.
type Injector interface {
	Probe(ctx context.Context, spec Spec) (Observation, error)
}

// Culprit is one accused rule in the ranked localization report.
type Culprit struct {
	// RuleID is the accused rule.
	RuleID int `json:"ruleId"`
	// Switch hosts the accused rule.
	Switch topo.SwitchID `json:"switch"`
	// Confidence is the strongest vanished-mass fraction any probe
	// observed at this rule's hop, in [0, 1].
	Confidence float64 `json:"confidence"`
	// Probes is how many probes implicated this rule.
	Probes int `json:"probes"`
}

// Outcome is one localization's ranked culprit report.
type Outcome struct {
	// Localized reports whether a culprit reached the confidence bar.
	Localized bool `json:"localized"`
	// Culprits is the ranked accusation list, strongest first.
	Culprits []Culprit `json:"culprits"`
	// ProbesUsed is how many probes were spent (including errored ones).
	ProbesUsed int `json:"probesUsed"`
	// ProbeBudget is the cap the run operated under.
	ProbeBudget int `json:"probeBudget"`
	// SuspectSwitches echoes the switch suspect set probing started from.
	SuspectSwitches []topo.SwitchID `json:"suspectSwitches"`
	// SuspectRules is the size of the initial suspect rule set.
	SuspectRules int `json:"suspectRules"`
	// Exonerated is how many suspect rules clean probes cleared.
	Exonerated int `json:"exonerated"`
	// CleanProbes / FailedProbes / ErrorProbes break down ProbesUsed.
	CleanProbes  int `json:"cleanProbes"`
	FailedProbes int `json:"failedProbes"`
	ErrorProbes  int `json:"errorProbes"`
	// Elapsed is the end-to-end localization wall time.
	Elapsed time.Duration `json:"elapsedNs"`
}

// TopCulprit returns the strongest accusation, or ok=false when the
// run accused nobody.
func (o Outcome) TopCulprit() (Culprit, bool) {
	if len(o.Culprits) == 0 {
		return Culprit{}, false
	}
	return o.Culprits[0], true
}

// Localizer plans and runs active-probe localizations over one FCM
// generation. Rebuild it when the baseline changes (it is cheap: the
// constructor only indexes rule→flow coverage). Not safe for
// concurrent Localize calls sharing one Injector.
type Localizer struct {
	f   *fcm.FCM
	inj Injector
	cfg Config
	// flowsByRule maps rule ID → flows whose history contains it.
	flowsByRule map[int][]*fcm.Flow
}

// New builds a localizer over the FCM using the given injector.
func New(f *fcm.FCM, inj Injector, cfg Config) (*Localizer, error) {
	if f == nil || inj == nil {
		return nil, fmt.Errorf("probe: nil FCM or injector")
	}
	byRule := make(map[int][]*fcm.Flow)
	for _, fl := range f.Flows {
		for _, rid := range fl.RuleIDs {
			byRule[rid] = append(byRule[rid], fl)
		}
	}
	return &Localizer{f: f, inj: inj, cfg: cfg, flowsByRule: byRule}, nil
}

// Localize runs one active-probe localization. suspects is the
// switch-level suspect set from detection (sliced-outcome suspects or
// core.TopSuspects); ruleErr, when non-nil, is the detection error
// vector Δ indexed by rule ID and weights probe selection toward the
// rules carrying the unexplained mass (nil weights rules uniformly).
func (l *Localizer) Localize(ctx context.Context, suspects []topo.SwitchID, ruleErr []float64) (Outcome, error) {
	start := time.Now()
	out := Outcome{SuspectSwitches: append([]topo.SwitchID(nil), suspects...)}
	if len(suspects) == 0 {
		out.Elapsed = time.Since(start)
		return out, fmt.Errorf("probe: empty suspect set")
	}
	suspectSwitch := make(map[topo.SwitchID]bool, len(suspects))
	for _, sw := range suspects {
		suspectSwitch[sw] = true
	}
	// Suspect rules: hosted on a suspect switch AND carrying traffic
	// (a rule no flow matches cannot be probed or blamed).
	remaining := make(map[int]bool)
	for rid, r := range l.f.Rules {
		if suspectSwitch[r.Switch] && len(l.flowsByRule[rid]) > 0 {
			remaining[rid] = true
		}
	}
	out.SuspectRules = len(remaining)
	cfg := l.cfg.withDefaults(len(remaining))
	out.ProbeBudget = cfg.MaxProbes
	if len(remaining) == 0 {
		out.Elapsed = time.Since(start)
		return out, nil
	}

	votes := make(map[int]*Culprit)
	probed := make(map[int]bool) // flows already spent
	for len(remaining) > 0 && out.ProbesUsed < cfg.MaxProbes {
		if err := ctx.Err(); err != nil {
			out.Elapsed = time.Since(start)
			return out, err
		}
		fl := l.pickFlow(remaining, probed, ruleErr)
		if fl == nil {
			break // no un-probed flow covers a remaining suspect
		}
		probed[fl.ID] = true
		spec, ok := l.synthesize(fl, cfg.Volume)
		if !ok {
			continue // no injectable pair; costs no probe
		}
		pctx, cancel := context.WithTimeout(ctx, cfg.Deadline)
		obs, err := l.inj.Probe(pctx, spec)
		cancel()
		out.ProbesUsed++
		if err != nil {
			// A probe that errored (deadline, unreachable injection
			// point) says nothing about the rules it covers: spend the
			// budget slot but exonerate nobody.
			out.ErrorProbes++
			continue
		}
		verdict := analyzeProbe(spec, obs)
		if verdict.clean {
			out.CleanProbes++
			for _, rid := range spec.Expected {
				if remaining[rid] {
					delete(remaining, rid)
					out.Exonerated++
				}
			}
			continue
		}
		out.FailedProbes++
		// The counted prefix before the culprit behaved end to end:
		// those rules matched AND their actions moved the traffic to
		// the next expected hop. Clear them along with the accused rule
		// so follow-up probes narrow onto genuinely unknown rules.
		for _, rid := range spec.Expected {
			if remaining[rid] {
				delete(remaining, rid)
				if rid != verdict.culprit {
					out.Exonerated++
				}
			}
			if rid == verdict.culprit {
				break
			}
		}
		v := votes[verdict.culprit]
		if v == nil {
			v = &Culprit{RuleID: verdict.culprit, Switch: l.f.Rules[verdict.culprit].Switch}
			votes[verdict.culprit] = v
		}
		v.Probes++
		if verdict.confidence > v.Confidence {
			v.Confidence = verdict.confidence
		}
		if v.Confidence >= cfg.MinConfidence {
			break
		}
	}

	out.Culprits = rankVotes(votes)
	if top, ok := out.TopCulprit(); ok && top.Confidence >= cfg.MinConfidence {
		out.Localized = true
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// pickFlow greedily selects the un-probed flow whose expected history
// covers the largest weighted share of the remaining suspect rules —
// the group-testing step: a clean result removes the covered portion,
// a failing result pinpoints a culprit via per-hop analysis. Weight is
// the rule's detection error mass when available, else 1, and every
// candidate additionally scores the residual mass along its *whole*
// expected path: a flow whose own counters misfit the baseline is the
// most informative probe even when the misfitting hops fall outside
// the suspect set (a detour's starved downstream rules, say). Ties
// break on lower flow ID for determinism.
func (l *Localizer) pickFlow(remaining map[int]bool, probed map[int]bool, ruleErr []float64) *fcm.Flow {
	errAt := func(rid int) float64 {
		if ruleErr != nil && rid < len(ruleErr) {
			return math.Abs(ruleErr[rid])
		}
		return 0
	}
	// Collect candidate flows from the remaining rules' coverage lists.
	seen := make(map[int]bool)
	var best *fcm.Flow
	var bestScore float64
	for rid := range remaining {
		for _, fl := range l.flowsByRule[rid] {
			if probed[fl.ID] || seen[fl.ID] {
				continue
			}
			seen[fl.ID] = true
			score := 0.0
			for _, r := range fl.RuleIDs {
				if remaining[r] {
					score += 1 + errAt(r)
				} else {
					score += errAt(r)
				}
			}
			if best == nil || score > bestScore || (score == bestScore && fl.ID < best.ID) {
				best, bestScore = fl, score
			}
		}
	}
	return best
}

// synthesize builds the concrete probe for a flow class: a packet from
// the class's header space (the SourcePin ∩ match intersection the FCM
// generator computed), injected at the class's first source host.
func (l *Localizer) synthesize(fl *fcm.Flow, volume uint64) (Spec, bool) {
	if len(fl.Pairs) == 0 || len(fl.RuleIDs) == 0 {
		return Spec{}, false
	}
	p := fl.Pairs[0]
	return Spec{
		Flow:     fl.ID,
		Src:      p.Src,
		Dst:      p.Dst,
		Packet:   fl.Space.AnyPacket(),
		Expected: append([]int(nil), fl.RuleIDs...),
		Volume:   volume,
	}, true
}

// probeVerdict is one probe's analysis.
type probeVerdict struct {
	clean      bool
	culprit    int
	confidence float64
}

// analyzeProbe folds a probe's observed counters against its expected
// history. Counters count matches before actions, so the walk looks
// for the first starved hop: the rule before it counted the traffic
// and then its action lost it — drop, deviation and detour all break
// the chain at exactly the compromised rule, even when a detour
// rejoins the path downstream (the rejoined rules count again, but the
// first starvation in path order already happened). Confidence is the
// vanished fraction of what the previous hop carried. The halving
// threshold tolerates per-link loss: honest hops lose a few percent,
// never half.
func analyzeProbe(spec Spec, obs Observation) probeVerdict {
	prev := float64(spec.Volume)
	for i, rid := range spec.Expected {
		d := float64(obs.Deltas[rid])
		if d < prev/2 {
			culprit := rid // starved first hop: blame the entry rule itself
			if i > 0 {
				culprit = spec.Expected[i-1]
			}
			conf := 0.0
			if prev > 0 {
				conf = (prev - d) / prev
			}
			return probeVerdict{culprit: culprit, confidence: conf}
		}
		prev = d
	}
	// Every expected rule counted. If the class should deliver and the
	// delivery starved anyway, the last rule's action misfired (e.g. a
	// tampered last-hop deliver rule).
	if spec.Dst >= 0 && float64(obs.Delivered) < prev/2 {
		conf := 0.0
		if prev > 0 {
			conf = (prev - float64(obs.Delivered)) / prev
		}
		return probeVerdict{culprit: spec.Expected[len(spec.Expected)-1], confidence: conf}
	}
	return probeVerdict{clean: true}
}

// rankVotes orders accusations by confidence, then by implicating
// probe count, then by rule ID for determinism.
func rankVotes(votes map[int]*Culprit) []Culprit {
	out := make([]Culprit, 0, len(votes))
	for _, v := range votes {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Probes != out[j].Probes {
			return out[i].Probes > out[j].Probes
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}
