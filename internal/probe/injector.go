package probe

import (
	"context"
	"math/rand"
	"sync"

	"foces/internal/dataplane"
)

// NetworkInjector injects probes directly into a dataplane.Network —
// the in-process analogue of an OpenFlow PacketOut followed by paired
// flow-stats reads. It snapshots the network's rule counters around
// the injection so the returned deltas isolate the probe's own counter
// movement even while monitored traffic keeps the counters warm
// between windows.
type NetworkInjector struct {
	mu  sync.Mutex
	net *dataplane.Network
	rng *rand.Rand
}

// NewNetworkInjector builds an injector over the network. rng drives
// link-loss draws during the probe walk; localization stays
// deterministic when the caller seeds it.
func NewNetworkInjector(net *dataplane.Network, rng *rand.Rand) *NetworkInjector {
	return &NetworkInjector{net: net, rng: rng}
}

// Probe implements Injector. The snapshot/inject/diff sequence holds
// the injector's lock so concurrent probes cannot bleed counter
// movement into each other's deltas.
func (ni *NetworkInjector) Probe(ctx context.Context, spec Spec) (Observation, error) {
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	ni.mu.Lock()
	defer ni.mu.Unlock()
	before := ni.net.CollectCounters()
	out, err := ni.net.InjectPacket(ni.rng, spec.Src, spec.Dst, spec.Packet, spec.Volume)
	if err != nil {
		return Observation{}, err
	}
	after := ni.net.CollectCounters()
	deltas := make(map[int]uint64)
	for id, v := range after {
		if d := v - before[id]; d > 0 {
			deltas[id] = d
		}
	}
	return Observation{Deltas: deltas, Delivered: out.Delivered, Offered: out.Offered}, nil
}
