// Package wire provides the length-prefixed frame layer shared by the
// control-channel protocols in this repository (internal/openflow's
// switch channel and internal/cluster's coordinator/detector channel).
// A frame is a fixed 10-byte header — version(1) + type(1) +
// total-length(4, big-endian, header included) + xid(4, big-endian) —
// followed by the body. The reader refuses frames whose advertised
// length exceeds a per-connection cap, so a corrupt or hostile length
// prefix can never make the receiver allocate unbounded memory; both
// directions report the violation as a typed *SizeError.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// HeaderSize is version(1) + type(1) + length(4) + xid(4).
const HeaderSize = 10

// SizeError reports a frame that exceeds the connection's frame cap —
// on write, a body too large to frame; on read, a length prefix
// advertising more than the cap (or less than a bare header).
type SizeError struct {
	// Proto is the owning protocol's name ("openflow", "cluster"),
	// used as the error prefix.
	Proto string
	// Size is the offending total frame size in bytes (header
	// included).
	Size int
	// Limit is the connection's maximum frame size.
	Limit int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("%s: frame of %d bytes outside [%d, %d]", e.Proto, e.Size, HeaderSize, e.Limit)
}

// Conn frames (type, xid, body) tuples over a transport connection.
// Writes are serialized by an internal mutex; a single reader is
// expected. The version byte and frame cap are fixed per connection.
type Conn struct {
	raw      net.Conn
	proto    string
	version  byte
	maxFrame int

	writeMu  sync.Mutex
	writeBuf []byte // reused frame assembly buffer, guarded by writeMu

	// hdr is the read-side header scratch. A local array would escape
	// through the io.Reader interface and cost one allocation per
	// frame; the single-reader contract makes a per-connection buffer
	// safe.
	hdr [HeaderSize]byte
}

// NewConn wraps a transport connection. proto names the owning
// protocol for error messages, version is the value written into (and
// required of) every frame's first byte, and maxFrame caps the total
// frame size in both directions.
func NewConn(raw net.Conn, proto string, version byte, maxFrame int) *Conn {
	return &Conn{raw: raw, proto: proto, version: version, maxFrame: maxFrame}
}

// Raw returns the underlying transport connection (for deadlines).
func (c *Conn) Raw() net.Conn { return c.raw }

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }

// WriteFrame sends one frame. A body that would push the total frame
// past the cap is refused with a *SizeError before anything is
// written. The frame is assembled in a per-connection buffer reused
// across calls (the body is copied; the caller keeps ownership), so a
// steady stream of frames allocates nothing after the first.
func (c *Conn) WriteFrame(msgType byte, xid uint32, body []byte) error {
	total := HeaderSize + len(body)
	if total > c.maxFrame {
		return &SizeError{Proto: c.proto, Size: total, Limit: c.maxFrame}
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if cap(c.writeBuf) < total {
		c.writeBuf = make([]byte, total)
	}
	frame := c.writeBuf[:total]
	frame[0] = c.version
	frame[1] = msgType
	binary.BigEndian.PutUint32(frame[2:], uint32(total))
	binary.BigEndian.PutUint32(frame[6:], xid)
	copy(frame[HeaderSize:], body)
	_, err := c.raw.Write(frame)
	return err
}

// ReadFrame receives the next frame, blocking until one arrives or the
// transport fails. A length prefix outside [HeaderSize, cap] is
// refused with a *SizeError without reading (or allocating) the body.
// The body is freshly allocated and owned by the caller; hot read
// loops should prefer ReadFrameInto.
func (c *Conn) ReadFrame() (msgType byte, xid uint32, body []byte, err error) {
	return c.readFrame(nil, false)
}

// ReadFrameInto is ReadFrame into caller-provided storage: the body is
// read into buf, which is grown (reallocated) only when its capacity
// is short.
//
// Aliasing contract: the returned body aliases buf's storage — it is
// valid only until the caller's next ReadFrameInto with the same
// buffer. A read loop keeps a single buffer alive across iterations
// and feeds the returned body back in:
//
//	var buf []byte
//	for {
//		t, xid, body, err := conn.ReadFrameInto(buf)
//		...
//		buf = body[:cap(body)] // recycle; body is dead after this
//	}
//
// Handlers that retain frame bytes past the next read (e.g. queueing
// raw messages) must copy them out, or use ReadFrame instead.
func (c *Conn) ReadFrameInto(buf []byte) (msgType byte, xid uint32, body []byte, err error) {
	return c.readFrame(buf, true)
}

func (c *Conn) readFrame(buf []byte, reuse bool) (msgType byte, xid uint32, body []byte, err error) {
	hdr := c.hdr[:]
	if _, err := io.ReadFull(c.raw, hdr); err != nil {
		return 0, 0, nil, err
	}
	if hdr[0] != c.version {
		return 0, 0, nil, fmt.Errorf("%s: bad version %d", c.proto, hdr[0])
	}
	total := binary.BigEndian.Uint32(hdr[2:])
	if total < HeaderSize || int64(total) > int64(c.maxFrame) {
		return 0, 0, nil, &SizeError{Proto: c.proto, Size: int(total), Limit: c.maxFrame}
	}
	n := int(total - HeaderSize)
	if !reuse || cap(buf) < n {
		body = make([]byte, n)
	} else {
		body = buf[:n]
	}
	if _, err := io.ReadFull(c.raw, body); err != nil {
		return 0, 0, nil, fmt.Errorf("%s: short body: %w", c.proto, err)
	}
	return hdr[1], binary.BigEndian.Uint32(hdr[6:]), body, nil
}
