// Package wire provides the length-prefixed frame layer shared by the
// control-channel protocols in this repository (internal/openflow's
// switch channel and internal/cluster's coordinator/detector channel).
// A frame is a fixed 10-byte header — version(1) + type(1) +
// total-length(4, big-endian, header included) + xid(4, big-endian) —
// followed by the body. The reader refuses frames whose advertised
// length exceeds a per-connection cap, so a corrupt or hostile length
// prefix can never make the receiver allocate unbounded memory; both
// directions report the violation as a typed *SizeError.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// HeaderSize is version(1) + type(1) + length(4) + xid(4).
const HeaderSize = 10

// SizeError reports a frame that exceeds the connection's frame cap —
// on write, a body too large to frame; on read, a length prefix
// advertising more than the cap (or less than a bare header).
type SizeError struct {
	// Proto is the owning protocol's name ("openflow", "cluster"),
	// used as the error prefix.
	Proto string
	// Size is the offending total frame size in bytes (header
	// included).
	Size int
	// Limit is the connection's maximum frame size.
	Limit int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("%s: frame of %d bytes outside [%d, %d]", e.Proto, e.Size, HeaderSize, e.Limit)
}

// Conn frames (type, xid, body) tuples over a transport connection.
// Writes are serialized by an internal mutex; a single reader is
// expected. The version byte and frame cap are fixed per connection.
type Conn struct {
	raw      net.Conn
	proto    string
	version  byte
	maxFrame int

	writeMu sync.Mutex
}

// NewConn wraps a transport connection. proto names the owning
// protocol for error messages, version is the value written into (and
// required of) every frame's first byte, and maxFrame caps the total
// frame size in both directions.
func NewConn(raw net.Conn, proto string, version byte, maxFrame int) *Conn {
	return &Conn{raw: raw, proto: proto, version: version, maxFrame: maxFrame}
}

// Raw returns the underlying transport connection (for deadlines).
func (c *Conn) Raw() net.Conn { return c.raw }

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }

// WriteFrame sends one frame. A body that would push the total frame
// past the cap is refused with a *SizeError before anything is
// written.
func (c *Conn) WriteFrame(msgType byte, xid uint32, body []byte) error {
	total := HeaderSize + len(body)
	if total > c.maxFrame {
		return &SizeError{Proto: c.proto, Size: total, Limit: c.maxFrame}
	}
	frame := make([]byte, total)
	frame[0] = c.version
	frame[1] = msgType
	binary.BigEndian.PutUint32(frame[2:], uint32(total))
	binary.BigEndian.PutUint32(frame[6:], xid)
	copy(frame[HeaderSize:], body)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := c.raw.Write(frame)
	return err
}

// ReadFrame receives the next frame, blocking until one arrives or the
// transport fails. A length prefix outside [HeaderSize, cap] is
// refused with a *SizeError without reading (or allocating) the body.
func (c *Conn) ReadFrame() (msgType byte, xid uint32, body []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(c.raw, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if hdr[0] != c.version {
		return 0, 0, nil, fmt.Errorf("%s: bad version %d", c.proto, hdr[0])
	}
	total := binary.BigEndian.Uint32(hdr[2:])
	if total < HeaderSize || int64(total) > int64(c.maxFrame) {
		return 0, 0, nil, &SizeError{Proto: c.proto, Size: int(total), Limit: c.maxFrame}
	}
	body = make([]byte, total-HeaderSize)
	if _, err := io.ReadFull(c.raw, body); err != nil {
		return 0, 0, nil, fmt.Errorf("%s: short body: %w", c.proto, err)
	}
	return hdr[1], binary.BigEndian.Uint32(hdr[6:]), body, nil
}
