package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
)

func pipePair(t *testing.T, maxFrame int) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn(a, "test", 7, maxFrame)
	cb := NewConn(b, "test", 7, maxFrame)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	ca, cb := pipePair(t, 1<<20)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ca.WriteFrame(3, 42, []byte("hello")); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := ca.WriteFrame(9, 43, nil); err != nil {
			t.Errorf("write empty: %v", err)
		}
	}()
	mt, xid, body, err := cb.ReadFrame()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if mt != 3 || xid != 42 || string(body) != "hello" {
		t.Fatalf("got type=%d xid=%d body=%q", mt, xid, body)
	}
	mt, xid, body, err = cb.ReadFrame()
	if err != nil {
		t.Fatalf("read empty: %v", err)
	}
	if mt != 9 || xid != 43 || len(body) != 0 {
		t.Fatalf("got type=%d xid=%d body=%q", mt, xid, body)
	}
	wg.Wait()
}

func TestWriteFrameTooLarge(t *testing.T) {
	ca, _ := pipePair(t, 64)
	err := ca.WriteFrame(1, 0, make([]byte, 64))
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SizeError, got %v", err)
	}
	if se.Size != HeaderSize+64 || se.Limit != 64 || se.Proto != "test" {
		t.Fatalf("unexpected SizeError fields: %+v", se)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// Hand-craft a header whose length prefix exceeds the reader's cap.
	cb := NewConn(b, "test", 7, 64)
	go func() {
		hdr := []byte{7, 1, 0, 0, 1, 0, 0, 0, 0, 0} // total = 256 > 64
		a.Write(hdr)
	}()
	_, _, _, err := cb.ReadFrame()
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SizeError, got %v", err)
	}
	if se.Size != 256 || se.Limit != 64 {
		t.Fatalf("unexpected SizeError fields: %+v", se)
	}
}

func TestReadFrameShortLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cb := NewConn(b, "test", 7, 64)
	go func() {
		hdr := []byte{7, 1, 0, 0, 0, 4, 0, 0, 0, 0} // total = 4 < header
		a.Write(hdr)
	}()
	_, _, _, err := cb.ReadFrame()
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SizeError, got %v", err)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cb := NewConn(b, "test", 7, 64)
	go func() {
		hdr := []byte{8, 1, 0, 0, 0, 10, 0, 0, 0, 0}
		a.Write(hdr)
	}()
	if _, _, _, err := cb.ReadFrame(); err == nil {
		t.Fatal("expected version error")
	}
}

func TestConcurrentWritersInterleaveWholeFrames(t *testing.T) {
	ca, cb := pipePair(t, 1<<20)
	const n = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := make([]byte, 100+w)
			for i := 0; i < n; i++ {
				if err := ca.WriteFrame(byte(w+1), uint32(i), body); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 4*n; i++ {
		mt, _, body, err := cb.ReadFrame()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(body) != 100+int(mt)-1 {
			t.Fatalf("frame %d: writer %d body %d bytes", i, mt, len(body))
		}
	}
	wg.Wait()
}
