// Frame-layer allocation regression test. Excluded under the race
// detector, whose instrumentation inflates MemStats allocation counts.

//go:build !race

package wire

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// bufConn is an in-memory net.Conn over a single bytes.Buffer: frames
// written with WriteFrame are read back by ReadFrameInto on the same
// goroutine, so the round trip is deterministic and AllocsPerRun sees
// only the frame layer's own allocations.
type bufConn struct{ buf bytes.Buffer }

func (c *bufConn) Read(p []byte) (int, error)  { return c.buf.Read(p) }
func (c *bufConn) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *bufConn) Close() error                { return nil }
func (c *bufConn) LocalAddr() net.Addr         { return nil }
func (c *bufConn) RemoteAddr() net.Addr        { return nil }
func (c *bufConn) SetDeadline(time.Time) error { return nil }

func (c *bufConn) SetReadDeadline(time.Time) error  { return nil }
func (c *bufConn) SetWriteDeadline(time.Time) error { return nil }

// TestFrameRoundTripAllocs pins the steady-state cost of the framing
// hot path: after the first round trip grows the write buffer and the
// read body, WriteFrame + ReadFrameInto must not allocate at all.
func TestFrameRoundTripAllocs(t *testing.T) {
	c := NewConn(&bufConn{}, "test", 7, 1<<16)
	payload := bytes.Repeat([]byte{0xAB}, 512)
	var buf []byte
	roundTrip := func() {
		if err := c.WriteFrame(3, 42, payload); err != nil {
			t.Fatal(err)
		}
		typ, xid, body, err := c.ReadFrameInto(buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != 3 || xid != 42 || len(body) != len(payload) {
			t.Fatalf("round trip corrupted frame: type=%d xid=%d len=%d", typ, xid, len(body))
		}
		buf = body[:cap(body)]
	}
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs != 0 {
		t.Errorf("frame round trip allocated %.1f times per frame; want 0", allocs)
	}
}
