package matrix

import (
	"fmt"
	"sort"
)

// SymSparse is a symmetric sparse matrix stored as its lower triangle
// in compressed-sparse-column form (each column holds its diagonal
// entry first, then strictly-lower rows in ascending order), plus the
// full off-diagonal adjacency pattern that the fill-reducing ordering
// and the elimination-tree analysis walk. It is the sparse counterpart
// of the dense Gram HᵀH: assembly never materializes an n×n array, so
// memory is O(nnz) where the dense Gram is O(n²).
//
// A diagonal slot is always stored for every column, even when its
// value is zero (a structurally empty H column). That keeps the
// factorization pattern closed under ridge regularization: AddRidge
// never changes the pattern, so a cached symbolic analysis stays valid
// across the not-positive-definite retry.
type SymSparse struct {
	n      int
	colPtr []int   // lower triangle: column j at rowIdx/val[colPtr[j]:colPtr[j+1]]
	rowIdx []int32 // rows ≥ j, ascending; rowIdx[colPtr[j]] == j (diagonal)
	val    []float64
	adjPtr []int // full off-diagonal adjacency, ascending neighbors per node
	adj    []int32
}

// SymGram assembles mᵀ*m in sparse symmetric form. Cost is
// O(nnz + Σᵢ nnz(rowᵢ)²) time and O(nnz(Gram)) memory; it uses a
// ColumnIndex so each Gram column a is produced by sweeping only the
// rows that actually hold column a.
func (m *CSR) SymGram() *SymSparse {
	n := m.cols
	g := &SymSparse{n: n, colPtr: make([]int, n+1)}
	if n == 0 {
		g.adjPtr = make([]int, 1)
		return g
	}
	ix := NewColumnIndex(m)
	w := make([]float64, n)
	marked := make([]bool, n)
	pattern := make([]int32, 0, 64)
	for a := 0; a < n; a++ {
		// Force the diagonal slot even for empty columns.
		pattern = append(pattern[:0], int32(a))
		marked[a] = true
		for p := ix.colPtr[a]; p < ix.colPtr[a+1]; p++ {
			k := int(ix.pos[p])
			end := int(ix.end[p])
			va := m.val[k]
			// Entries at positions ≥ k in this row have column ≥ a, which
			// is exactly the lower triangle of the Gram column.
			for q := k; q < end; q++ {
				b := m.colIdx[q]
				if !marked[b] {
					marked[b] = true
					pattern = append(pattern, int32(b))
				}
				w[b] += va * m.val[q]
			}
		}
		sort.Slice(pattern, func(i, j int) bool { return pattern[i] < pattern[j] })
		for _, b := range pattern {
			g.rowIdx = append(g.rowIdx, b)
			g.val = append(g.val, w[b])
			w[b] = 0
			marked[b] = false
		}
		g.colPtr[a+1] = len(g.rowIdx)
	}
	g.buildAdjacency()
	return g
}

// buildAdjacency mirrors the strict lower triangle into a full
// off-diagonal adjacency list with ascending neighbors per node.
func (g *SymSparse) buildAdjacency() {
	n := g.n
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for p := g.colPtr[j] + 1; p < g.colPtr[j+1]; p++ {
			deg[j]++
			deg[g.rowIdx[p]]++
		}
	}
	g.adjPtr = make([]int, n+1)
	for j := 0; j < n; j++ {
		g.adjPtr[j+1] = g.adjPtr[j] + deg[j]
	}
	g.adj = make([]int32, g.adjPtr[n])
	fill := make([]int, n)
	copy(fill, g.adjPtr[:n])
	// Scanning columns in ascending order appends, for each node, first
	// its smaller neighbors (while scanning their columns) and then its
	// larger ones (while scanning its own column), both ascending — so
	// every adjacency list comes out sorted without an explicit sort.
	for j := 0; j < n; j++ {
		for p := g.colPtr[j] + 1; p < g.colPtr[j+1]; p++ {
			r := g.rowIdx[p]
			g.adj[fill[r]] = int32(j)
			fill[r]++
		}
		for p := g.colPtr[j] + 1; p < g.colPtr[j+1]; p++ {
			g.adj[fill[j]] = g.rowIdx[p]
			fill[j]++
		}
	}
}

// N reports the dimension.
func (g *SymSparse) N() int { return g.n }

// NNZLower reports the stored lower-triangle entry count (including the
// always-present diagonal).
func (g *SymSparse) NNZLower() int { return len(g.rowIdx) }

// Density reports the fraction of the full n×n matrix that is
// structurally non-zero (counting both triangles; forced diagonal slots
// included).
func (g *SymSparse) Density() float64 {
	if g.n == 0 {
		return 0
	}
	full := 2*len(g.rowIdx) - g.n // mirror off-diagonals, count diag once
	return float64(full) / (float64(g.n) * float64(g.n))
}

// Trace returns the sum of diagonal entries.
func (g *SymSparse) Trace() float64 {
	var t float64
	for j := 0; j < g.n; j++ {
		t += g.val[g.colPtr[j]]
	}
	return t
}

// AddRidge adds r to every diagonal entry. The pattern is unchanged
// because diagonal slots are always stored.
func (g *SymSparse) AddRidge(r float64) {
	for j := 0; j < g.n; j++ {
		g.val[g.colPtr[j]] += r
	}
}

// ToDense scatters the symmetric matrix to dense form. The dense
// fallback of the auto-selecting prepare path uses it so a Gram
// assembled sparsely is not recomputed; the result equals GramSerial
// exactly because each entry was accumulated in the same ascending
// input-row order.
func (g *SymSparse) ToDense() *Dense {
	d := NewDense(g.n, g.n)
	for j := 0; j < g.n; j++ {
		for p := g.colPtr[j]; p < g.colPtr[j+1]; p++ {
			i := int(g.rowIdx[p])
			v := g.val[p]
			d.Set(i, j, v)
			if i != j {
				d.Set(j, i, v)
			}
		}
	}
	return d
}

// PatternEqual reports whether two symmetric matrices share the exact
// same stored lower-triangle pattern. The churn manager uses it to
// decide whether a cached symbolic analysis can be reused across a
// refactorization.
func (g *SymSparse) PatternEqual(o *SymSparse) bool {
	if g.n != o.n || len(g.rowIdx) != len(o.rowIdx) {
		return false
	}
	for j := 0; j <= g.n; j++ {
		if g.colPtr[j] != o.colPtr[j] {
			return false
		}
	}
	for p, r := range g.rowIdx {
		if o.rowIdx[p] != r {
			return false
		}
	}
	return true
}

// symCheck validates structural invariants (diag-first ascending
// columns); used by tests.
func (g *SymSparse) symCheck() error {
	for j := 0; j < g.n; j++ {
		lo, hi := g.colPtr[j], g.colPtr[j+1]
		if lo >= hi || g.rowIdx[lo] != int32(j) {
			return fmt.Errorf("matrix: symsparse column %d missing diagonal", j)
		}
		for p := lo + 1; p < hi; p++ {
			if g.rowIdx[p] <= g.rowIdx[p-1] {
				return fmt.Errorf("matrix: symsparse column %d rows not ascending", j)
			}
		}
	}
	return nil
}
