package matrix

import (
	"math/rand"
	"testing"
)

func TestColumnIndexMatchesColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(40)
		h := randomSparseH(rng, rows, cols, 0.15)
		ix := NewColumnIndex(h)
		for j := 0; j < cols; j++ {
			want := h.Column(j)
			got := ix.Column(j, nil)
			if len(got) != len(want) {
				t.Fatalf("col %d: %v vs %v", j, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("col %d: %v vs %v", j, got, want)
				}
			}
			if ix.ColNNZ(j) != len(want) {
				t.Fatalf("col %d: nnz %d vs %d", j, ix.ColNNZ(j), len(want))
			}
			k := 0
			ix.ColumnEntries(j, func(row int, v float64) {
				if row != want[k] || v != h.At(row, j) {
					t.Fatalf("col %d entry %d: (%d,%g)", j, k, row, v)
				}
				k++
			})
		}
	}
}

// BenchmarkColumnSweep compares a full every-column sweep done with
// repeated CSR.Column (binary search per row) against one ColumnIndex
// build + indexed sweeps — the access pattern of the symbolic-analysis
// and sparse-Gram passes.
func BenchmarkColumnSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomSparseH(rng, 4000, 2000, 0.002)
	b.Run("at-based", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			for j := 0; j < h.Cols(); j++ {
				sink += len(h.Column(j))
			}
		}
		_ = sink
	})
	b.Run("indexed", func(b *testing.B) {
		var sink int
		buf := make([]int, 0, 64)
		for i := 0; i < b.N; i++ {
			ix := NewColumnIndex(h)
			for j := 0; j < h.Cols(); j++ {
				buf = ix.Column(j, buf[:0])
				sink += len(buf)
			}
		}
		_ = sink
	})
}
