package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randomFCMCSR builds a random FCM-shaped 0/1 matrix: each row (rule)
// has a bounded number of ones (the flows it matches), plus a leading
// identity band so the columns are independent enough to keep HᵀH
// positive definite.
func randomFCMCSR(t *testing.T, rng *rand.Rand, rows, cols, maxPerRow int) *CSR {
	t.Helper()
	var entries []Triplet
	for c := 0; c < cols && c < rows; c++ {
		entries = append(entries, Triplet{Row: c, Col: c, Val: 1})
	}
	for r := 0; r < rows; r++ {
		nnz := 1 + rng.Intn(maxPerRow)
		for e := 0; e < nnz; e++ {
			entries = append(entries, Triplet{Row: r, Col: rng.Intn(cols), Val: 1})
		}
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// spdDense builds a well-conditioned SPD matrix HᵀH + I from a random
// FCM.
func spdDense(t *testing.T, rng *rand.Rand, n int) *Dense {
	t.Helper()
	h := randomFCMCSR(t, rng, 3*n, n, 8)
	g := h.GramSerial()
	for i := 0; i < n; i++ {
		g.Add(i, i, 1)
	}
	return g
}

func densesBitwiseEqual(a, b *Dense) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				return false
			}
		}
	}
	return true
}

func maxAbsDense(a *Dense) float64 {
	m := 0.0
	for i := 0; i < a.Rows(); i++ {
		for _, v := range a.Row(i) {
			if av := math.Abs(v); av > m {
				m = av
			}
		}
	}
	return m
}

func TestKernelGramParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ rows, cols, per int }{
		{1, 1, 1},
		{40, 17, 4},
		{300, 150, 6},
		{500, 260, 12},
	}
	for _, sh := range shapes {
		m := randomFCMCSR(t, rng, sh.rows, sh.cols, sh.per)
		want := m.GramSerial()
		for _, w := range []int{1, 2, 3, 8} {
			got := m.GramOpts(KernelOptions{Workers: w})
			if !densesBitwiseEqual(want, got) {
				t.Fatalf("gram %dx%d workers=%d differs from serial", sh.rows, sh.cols, w)
			}
		}
		if got := m.GramOpts(KernelOptions{Serial: true}); !densesBitwiseEqual(want, got) {
			t.Fatalf("gram %dx%d serial option differs", sh.rows, sh.cols)
		}
	}
}

func TestKernelGramDefaultPathAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomFCMCSR(t, rng, 400, 200, 8)
	want := m.GramSerial()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(p)
		if got := m.Gram(); !densesBitwiseEqual(want, got) {
			t.Fatalf("default Gram differs from serial at GOMAXPROCS=%d", p)
		}
	}
}

func TestKernelBlockedCholeskyMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{130, 200, 257} {
		a := spdDense(t, rng, n)
		ref, err := newCholeskyUnblocked(a)
		if err != nil {
			t.Fatalf("n=%d unblocked: %v", n, err)
		}
		tol := 1e-12 * (1 + maxAbsDense(a))
		for _, bs := range []int{16, 32, 64, 100} {
			for _, w := range []int{1, 2, 5} {
				c, err := NewCholeskyOpts(a, KernelOptions{BlockSize: bs, Workers: w})
				if err != nil {
					t.Fatalf("n=%d bs=%d w=%d: %v", n, bs, w, err)
				}
				for i := 0; i < n; i++ {
					lr, lb := ref.l.Row(i), c.l.Row(i)
					for j := 0; j <= i; j++ {
						if d := math.Abs(lr[j] - lb[j]); d > tol {
							t.Fatalf("n=%d bs=%d w=%d: L[%d][%d] off by %g (tol %g)", n, bs, w, i, j, d, tol)
						}
					}
				}
			}
		}
	}
}

func TestKernelBlockedCholeskyWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := spdDense(t, rng, 200)
	base, err := NewCholeskyOpts(a, KernelOptions{BlockSize: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 9} {
		c, err := NewCholeskyOpts(a, KernelOptions{BlockSize: 32, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !densesBitwiseEqual(base.l, c.l) {
			t.Fatalf("blocked factor differs between 1 and %d workers", w)
		}
	}
}

func TestKernelCholeskyPivotFailureIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 180
	a := spdDense(t, rng, n)
	for _, p := range []int{0, 37, 64, 150, n - 1} {
		bad := a.Clone()
		// Sinking the diagonal far below its row's Schur complement makes
		// pivot p the first non-positive one for any factorization order.
		bad.Set(p, p, -1e6)
		_, errU := NewCholeskyOpts(bad, KernelOptions{Serial: true})
		if !errors.Is(errU, ErrNotPositiveDefinite) {
			t.Fatalf("pivot %d: unblocked err = %v", p, errU)
		}
		for _, w := range []int{1, 3} {
			_, errB := NewCholeskyOpts(bad, KernelOptions{BlockSize: 32, Workers: w})
			if !errors.Is(errB, ErrNotPositiveDefinite) {
				t.Fatalf("pivot %d workers=%d: blocked err = %v", p, w, errB)
			}
			var ju, jb int
			var vu, vb float64
			if _, err := fmt.Sscanf(errU.Error(), "matrix: not positive definite: pivot %d = %g", &ju, &vu); err != nil {
				t.Fatalf("parse unblocked error %q: %v", errU, err)
			}
			if _, err := fmt.Sscanf(errB.Error(), "matrix: not positive definite: pivot %d = %g", &jb, &vb); err != nil {
				t.Fatalf("parse blocked error %q: %v", errB, err)
			}
			if ju != p || jb != p {
				t.Fatalf("pivot indices: unblocked %d, blocked %d, want %d", ju, jb, p)
			}
		}
		// Worker count must not change the reported error at all.
		_, e1 := NewCholeskyOpts(bad, KernelOptions{BlockSize: 32, Workers: 1})
		_, e8 := NewCholeskyOpts(bad, KernelOptions{BlockSize: 32, Workers: 8})
		if e1.Error() != e8.Error() {
			t.Fatalf("pivot error differs across workers: %q vs %q", e1, e8)
		}
	}
}

func TestKernelSolveManyMatchesSolveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{5, 64, 170} {
		a := spdDense(t, rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		k := 7
		b := NewDense(n, k)
		for i := 0; i < n; i++ {
			for r := 0; r < k; r++ {
				b.Set(i, r, rng.NormFloat64()*100)
			}
		}
		x := NewDense(n, k)
		if err := c.SolveManyInto(x, b, NewDense(n, k)); err != nil {
			t.Fatal(err)
		}
		col := make([]float64, n)
		single := make([]float64, n)
		scratch := make([]float64, n)
		for r := 0; r < k; r++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, r)
			}
			if err := c.SolveInto(single, col, scratch); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if math.Float64bits(single[i]) != math.Float64bits(x.At(i, r)) {
					t.Fatalf("n=%d rhs %d row %d: batch %g vs single %g", n, r, i, x.At(i, r), single[i])
				}
			}
		}
	}
}

func TestKernelSolveBatchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	h := randomFCMCSR(t, rng, 240, 120, 6)
	p, err := PrepareLS(h, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ys := make([][]float64, 5)
	for r := range ys {
		y := make([]float64, h.Rows())
		for i := range y {
			y[i] = rng.Float64() * 1000
		}
		ys[r] = y
	}
	x, err := p.SolveBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	for r, y := range ys {
		want, err := p.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(x.At(i, r)) {
				t.Fatalf("rhs %d row %d: batch %g vs single %g", r, i, x.At(i, r), want[i])
			}
		}
	}
}

func TestKernelDefaultsRoundTrip(t *testing.T) {
	prev := SetKernelDefaults(KernelOptions{Workers: 3, BlockSize: 48})
	defer SetKernelDefaults(prev)
	got := KernelDefaults()
	if got.Workers != 3 || got.BlockSize != 48 || got.Serial {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if w := KernelWorkers(); w != 3 {
		t.Fatalf("KernelWorkers = %d, want 3", w)
	}
	if back := SetKernelDefaults(KernelOptions{Serial: true}); back.Workers != 3 {
		t.Fatalf("SetKernelDefaults returned %+v, want previous", back)
	}
	if w := KernelWorkers(); w != 1 {
		t.Fatalf("KernelWorkers under Serial = %d, want 1", w)
	}
	SetKernelDefaults(KernelOptions{Workers: 3, BlockSize: 48})
}

func TestKernelFanOutCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, w := range []int{1, 4} {
			seen := make([]int32, n)
			FanOut(n, w, func(i int) { seen[i]++ })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestKernelPreparedStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	h := randomFCMCSR(t, rng, 200, 100, 6)
	p, err := PrepareLS(h, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Gram < 0 || s.Factor < 0 {
		t.Fatalf("negative prepare stats: %+v", s)
	}
	if s.Gram == 0 && s.Factor == 0 {
		t.Fatalf("prepare stats all zero: %+v", s)
	}
}
