package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails;
// for FCM normal equations this means the flow columns are linearly
// dependent.
var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

// Cholesky holds the lower-triangular factor L of an SPD matrix A = LLᵀ.
type Cholesky struct {
	n int
	l *Dense
}

// NewCholesky factors the symmetric positive-definite matrix a.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("matrix: cholesky needs square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		ljRow := l.Row(j)
		diag = a.At(j, j)
		for k := 0; k < j; k++ {
			diag -= ljRow[k] * ljRow[k]
		}
		if diag <= 0 || math.IsNaN(diag) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, diag)
		}
		d := math.Sqrt(diag)
		ljRow[j] = d
		for i := j + 1; i < n; i++ {
			liRow := l.Row(i)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= liRow[k] * ljRow[k]
			}
			liRow[j] = s / d
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A x = b given the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("matrix: cholesky solve dim %d vs %d", len(b), c.n)
	}
	// Forward substitution: L y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LeastSquaresOptions tunes the normal-equations solver.
type LeastSquaresOptions struct {
	// Ridge is added to the Gram diagonal when plain Cholesky fails
	// (columns linearly dependent). Zero selects a default scaled to the
	// Gram trace.
	Ridge float64
}

// SolveNormalEquations computes the least-squares estimate
// x̂ = (HᵀH)⁻¹ Hᵀ y for a sparse H (Eq. 4 of the paper). When HᵀH is
// singular it retries once with ridge regularization so that detection
// degrades gracefully instead of failing.
func SolveNormalEquations(h *CSR, y []float64, opts LeastSquaresOptions) ([]float64, error) {
	if len(y) != h.Rows() {
		return nil, fmt.Errorf("matrix: normal equations dims %dx%d vs %d", h.Rows(), h.Cols(), len(y))
	}
	if h.Cols() == 0 {
		return nil, nil
	}
	gram := h.Gram()
	rhs, err := h.TMulVec(y)
	if err != nil {
		return nil, err
	}
	chol, err := NewCholesky(gram)
	if err == nil {
		return chol.Solve(rhs)
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		return nil, err
	}
	ridge := opts.Ridge
	if ridge == 0 {
		trace := 0.0
		for i := 0; i < gram.Rows(); i++ {
			trace += gram.At(i, i)
		}
		ridge = 1e-9 * (trace/float64(gram.Rows()) + 1)
	}
	for i := 0; i < gram.Rows(); i++ {
		gram.Add(i, i, ridge)
	}
	chol, err = NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("matrix: ridge-regularized normal equations: %w", err)
	}
	return chol.Solve(rhs)
}

// LeastSquaresQR solves min ‖A x − b‖₂ via Householder QR on a dense A
// with full column rank. Provided for the solver ablation; the FOCES
// default path uses SolveNormalEquations.
func LeastSquaresQR(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("matrix: qr dims %dx%d vs %d", m, n, len(b))
	}
	if m < n {
		return nil, fmt.Errorf("matrix: qr needs m >= n, got %dx%d", m, n)
	}
	r := a.Clone()
	rhs := make([]float64, m)
	copy(rhs, b)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("matrix: qr rank deficient at column %d", k)
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		vnorm2 := Dot(v, v)
		if vnorm2 == 0 {
			continue
		}
		// Apply the reflector to R and the RHS.
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * r.At(i, j)
			}
			s = 2 * s / vnorm2
			for i := k; i < m; i++ {
				r.Add(i, j, -s*v[i-k])
			}
		}
		var s float64
		for i := k; i < m; i++ {
			s += v[i-k] * rhs[i]
		}
		s = 2 * s / vnorm2
		for i := k; i < m; i++ {
			rhs[i] -= s * v[i-k]
		}
	}
	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("matrix: qr singular R at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	MaxIter int     // 0 selects 2n
	Tol     float64 // 0 selects 1e-10 relative residual
}

// SolveNormalEquationsCG computes the least-squares estimate with
// conjugate gradient on the normal equations (CGNR), never materializing
// HᵀH. This is the memory-lean ablation alternative.
func SolveNormalEquationsCG(h *CSR, y []float64, opts CGOptions) ([]float64, error) {
	if len(y) != h.Rows() {
		return nil, fmt.Errorf("matrix: cg dims %dx%d vs %d", h.Rows(), h.Cols(), len(y))
	}
	n := h.Cols()
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 2*n + 10
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	// r = Hᵀy - HᵀH x = Hᵀ y initially (x = 0).
	r, err := h.TMulVec(y)
	if err != nil {
		return nil, err
	}
	p := make([]float64, n)
	copy(p, r)
	rsOld := Dot(r, r)
	bNorm := math.Sqrt(rsOld)
	if bNorm == 0 {
		return x, nil
	}
	for it := 0; it < maxIter; it++ {
		hp, err := h.MulVec(p)
		if err != nil {
			return nil, err
		}
		ap, err := h.TMulVec(hp)
		if err != nil {
			return nil, err
		}
		denom := Dot(p, ap)
		if denom <= 0 {
			break // numerically semi-definite; accept current iterate
		}
		alpha := rsOld / denom
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		if math.Sqrt(rsNew) <= tol*bNorm {
			break
		}
		beta := rsNew / rsOld
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsOld = rsNew
	}
	return x, nil
}

// ResidualInColumnSpace reports whether vector v lies (within tol) in
// the column space of H, by solving the least-squares problem
// H x ≈ v and checking the residual norm relative to ‖v‖. This is the
// algebraic ground truth for Theorem 1's detectability condition.
func ResidualInColumnSpace(h *CSR, v []float64, tol float64) (bool, float64, error) {
	if len(v) != h.Rows() {
		return false, 0, fmt.Errorf("matrix: dims %dx%d vs %d", h.Rows(), h.Cols(), len(v))
	}
	x, err := SolveNormalEquationsCG(h, v, CGOptions{})
	if err != nil {
		return false, 0, err
	}
	hx, err := h.MulVec(x)
	if err != nil {
		return false, 0, err
	}
	diff, err := AbsDiff(hx, v)
	if err != nil {
		return false, 0, err
	}
	res := Norm2(diff)
	base := Norm2(v)
	if base == 0 {
		return true, 0, nil
	}
	rel := res / base
	return rel <= tol, rel, nil
}
