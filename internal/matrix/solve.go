package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails;
// for FCM normal equations this means the flow columns are linearly
// dependent.
var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

// ErrFactorPoisoned is returned by solves and further rank-one
// maintenance on a factor that a failed Update/Downdate left in an
// inconsistent state. A failed rank-one pass may have rotated a prefix
// of the columns before hitting the bad pivot, so the factor no longer
// represents any matrix; poisoning makes every later use fail loudly
// instead of solving against the half-rotated triangle.
var ErrFactorPoisoned = errors.New("matrix: factor poisoned by failed rank-one maintenance")

// Cholesky holds the lower-triangular factor L of an SPD matrix
// A = LLᵀ, plus Lᵀ so that both substitution passes stream contiguous
// rows of a row-major Dense instead of striding down a column.
type Cholesky struct {
	n  int
	l  *Dense
	lt *Dense
	// poisoned marks a factor left inconsistent by a failed rank-one
	// Update/Downdate; the zero value (valid) keeps plain
	// &Cholesky{n, l, lt} construction correct.
	poisoned bool
}

// NewCholesky factors the symmetric positive-definite matrix a.
// Matrices of at least twice the kernel block size take the blocked
// right-looking path (see kernels.go); dispatch depends only on the
// matrix size and block size — never on worker count — so the factor is
// reproducible across machines and GOMAXPROCS settings.
func NewCholesky(a *Dense) (*Cholesky, error) {
	return NewCholeskyOpts(a, KernelOptions{})
}

// newCholeskyUnblocked is the serial reference column sweep.
func newCholeskyUnblocked(a *Dense) (*Cholesky, error) {
	n := a.Rows()
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		ljRow := l.Row(j)
		diag = a.At(j, j)
		for k := 0; k < j; k++ {
			diag -= ljRow[k] * ljRow[k]
		}
		if diag <= 0 || math.IsNaN(diag) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, diag)
		}
		d := math.Sqrt(diag)
		ljRow[j] = d
		for i := j + 1; i < n; i++ {
			liRow := l.Row(i)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= liRow[k] * ljRow[k]
			}
			liRow[j] = s / d
		}
	}
	return &Cholesky{n: n, l: l, lt: l.Transpose()}, nil
}

// N reports the factored dimension.
func (c *Cholesky) N() int { return c.n }

// Valid reports whether the factor is usable: false once a failed
// Update/Downdate has poisoned it.
func (c *Cholesky) Valid() bool { return !c.poisoned }

// Solve solves A x = b given the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b, make([]float64, c.n)); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A x = b into dst without allocating, using scratch
// (length n) for the forward-substitution intermediate. dst may alias
// b; scratch must not alias either.
func (c *Cholesky) SolveInto(dst, b, scratch []float64) error {
	if len(b) != c.n {
		return fmt.Errorf("matrix: cholesky solve dim %d vs %d", len(b), c.n)
	}
	if len(dst) != c.n || len(scratch) != c.n {
		return fmt.Errorf("matrix: cholesky solve buffers %d/%d vs %d", len(dst), len(scratch), c.n)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	// Forward substitution: L y = b, streaming rows of L.
	y := scratch
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y, streaming rows of Lᵀ (columns of L).
	for i := c.n - 1; i >= 0; i-- {
		row := c.lt.Row(i)
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
	return nil
}

// LeastSquaresOptions tunes the normal-equations solver.
type LeastSquaresOptions struct {
	// Ridge is added to the Gram diagonal when plain Cholesky fails
	// (columns linearly dependent). Zero selects a default scaled to the
	// Gram trace.
	Ridge float64
}

// SolveNormalEquations computes the least-squares estimate
// x̂ = (HᵀH)⁻¹ Hᵀ y for a sparse H (Eq. 4 of the paper). When HᵀH is
// singular it retries once with ridge regularization so that detection
// degrades gracefully instead of failing. It is the one-shot form of
// PrepareLS + SolveInto; repeated solves against a fixed H should
// prepare once instead.
func SolveNormalEquations(h *CSR, y []float64, opts LeastSquaresOptions) ([]float64, error) {
	if len(y) != h.Rows() {
		return nil, fmt.Errorf("matrix: normal equations dims %dx%d vs %d", h.Rows(), h.Cols(), len(y))
	}
	if h.Cols() == 0 {
		return nil, nil
	}
	p, err := PrepareLS(h, opts)
	if err != nil {
		return nil, err
	}
	return p.Solve(y)
}

// LeastSquaresQR solves min ‖A x − b‖₂ via Householder QR on a dense A
// with full column rank. Provided for the solver ablation; the FOCES
// default path uses SolveNormalEquations.
func LeastSquaresQR(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("matrix: qr dims %dx%d vs %d", m, n, len(b))
	}
	if m < n {
		return nil, fmt.Errorf("matrix: qr needs m >= n, got %dx%d", m, n)
	}
	r := a.Clone()
	rhs := make([]float64, m)
	copy(rhs, b)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("matrix: qr rank deficient at column %d", k)
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		vnorm2 := Dot(v, v)
		if vnorm2 == 0 {
			continue
		}
		// Apply the reflector to R and the RHS.
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * r.At(i, j)
			}
			s = 2 * s / vnorm2
			for i := k; i < m; i++ {
				r.Add(i, j, -s*v[i-k])
			}
		}
		var s float64
		for i := k; i < m; i++ {
			s += v[i-k] * rhs[i]
		}
		s = 2 * s / vnorm2
		for i := k; i < m; i++ {
			rhs[i] -= s * v[i-k]
		}
	}
	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("matrix: qr singular R at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	MaxIter int     // 0 selects 2n
	Tol     float64 // 0 selects 1e-10 relative residual
}

// SolveNormalEquationsCG computes the least-squares estimate with
// conjugate gradient on the normal equations (CGNR), never materializing
// HᵀH. This is the memory-lean ablation alternative.
func SolveNormalEquationsCG(h *CSR, y []float64, opts CGOptions) ([]float64, error) {
	if len(y) != h.Rows() {
		return nil, fmt.Errorf("matrix: cg dims %dx%d vs %d", h.Rows(), h.Cols(), len(y))
	}
	n := h.Cols()
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 2*n + 10
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	// r = Hᵀy - HᵀH x = Hᵀ y initially (x = 0).
	r, err := h.TMulVec(y)
	if err != nil {
		return nil, err
	}
	p := make([]float64, n)
	copy(p, r)
	rsOld := Dot(r, r)
	bNorm := math.Sqrt(rsOld)
	if bNorm == 0 {
		return x, nil
	}
	for it := 0; it < maxIter; it++ {
		hp, err := h.MulVec(p)
		if err != nil {
			return nil, err
		}
		ap, err := h.TMulVec(hp)
		if err != nil {
			return nil, err
		}
		denom := Dot(p, ap)
		if denom <= 0 {
			break // numerically semi-definite; accept current iterate
		}
		alpha := rsOld / denom
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		if math.Sqrt(rsNew) <= tol*bNorm {
			break
		}
		beta := rsNew / rsOld
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsOld = rsNew
	}
	return x, nil
}

// ResidualInColumnSpace reports whether vector v lies (within tol) in
// the column space of H, by solving the least-squares problem
// H x ≈ v and checking the residual norm relative to ‖v‖. This is the
// algebraic ground truth for Theorem 1's detectability condition.
func ResidualInColumnSpace(h *CSR, v []float64, tol float64) (bool, float64, error) {
	if len(v) != h.Rows() {
		return false, 0, fmt.Errorf("matrix: dims %dx%d vs %d", h.Rows(), h.Cols(), len(v))
	}
	x, err := SolveNormalEquationsCG(h, v, CGOptions{})
	if err != nil {
		return false, 0, err
	}
	hx, err := h.MulVec(x)
	if err != nil {
		return false, 0, err
	}
	diff, err := AbsDiff(hx, v)
	if err != nil {
		return false, 0, err
	}
	res := Norm2(diff)
	base := Norm2(v)
	if base == 0 {
		return true, 0, nil
	}
	rel := res / base
	return rel <= tol, rel, nil
}
