package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperFig2H returns the original FCM H of the paper's Fig. 2 worked
// example (Eq. 6).
func paperFig2H(t *testing.T) *CSR {
	t.Helper()
	h, err := NewCSR(6, 3, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 4, Col: 2, Val: 1},
		{Row: 5, Col: 0, Val: 1}, {Row: 5, Col: 1, Val: 1}, {Row: 5, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPaperFig2WorkedExample(t *testing.T) {
	// Eq. 7: with Y' = (3,3,4,3,8,12)ᵀ the least-squares estimate is
	// X̂ = (3,1,8)ᵀ, Ŷ = (3,3,4,0,8,12)ᵀ, Δ = (0,0,0,3,0,0)ᵀ.
	h := paperFig2H(t)
	yObs := []float64{3, 3, 4, 3, 8, 12}
	x, err := SolveNormalEquations(h, yObs, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(x, []float64{3, 1, 8}, 1e-9) {
		t.Fatalf("X̂ = %v, want (3,1,8)", x)
	}
	yHat, err := h.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(yHat, []float64{3, 3, 4, 0, 8, 12}, 1e-9) {
		t.Fatalf("Ŷ = %v", yHat)
	}
	delta, err := AbsDiff(yObs, yHat)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(delta, []float64{0, 0, 0, 3, 0, 0}, 1e-9) {
		t.Fatalf("Δ = %v, want (0,0,0,3,0,0)", delta)
	}
}

func TestCholeskyKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=8 -> x=1.75, y=1.5
	if !VecEqualApprox(x, []float64{1.75, 1.5}, 1e-12) {
		t.Fatalf("solve = %v", x)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	b, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := NewCholesky(b); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestNormalEquationsRidgeFallbackOnDuplicateColumns(t *testing.T) {
	// Two identical flow columns make HᵀH singular; the solver must
	// still return a finite estimate whose fit is exact.
	h, err := NewCSR(3, 2, []Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{6, 6, 6}
	x, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	yHat, err := h.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(yHat, y, 1e-3) {
		t.Fatalf("ridge solution does not fit: %v", yHat)
	}
}

// randomFullRank builds a random sparse-ish tall matrix with full column
// rank (identity block on top guarantees rank).
func randomFullRank(r *rand.Rand, m, n int) *CSR {
	entries := make([]Triplet, 0, m*n/2+n)
	for j := 0; j < n; j++ {
		entries = append(entries, Triplet{Row: j, Col: j, Val: 1})
	}
	for i := n; i < m; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() < 0.4 {
				entries = append(entries, Triplet{Row: i, Col: j, Val: float64(1 + r.Intn(3))})
			}
		}
	}
	h, err := NewCSR(m, n, entries)
	if err != nil {
		panic(err)
	}
	return h
}

func TestPropertySolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := n + 2 + r.Intn(6)
		h := randomFullRank(r, m, n)
		y := make([]float64, m)
		for i := range y {
			y[i] = r.NormFloat64() * 10
		}
		xNE, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
		if err != nil {
			return false
		}
		xQR, err := LeastSquaresQR(h.ToDense(), y)
		if err != nil {
			return false
		}
		xCG, err := SolveNormalEquationsCG(h, y, CGOptions{})
		if err != nil {
			return false
		}
		return VecEqualApprox(xNE, xQR, 1e-6) && VecEqualApprox(xNE, xCG, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLeastSquaresResidualOrthogonal(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space:
	// Hᵀ(y - Hx̂) = 0.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := n + 2 + r.Intn(5)
		h := randomFullRank(r, m, n)
		y := make([]float64, m)
		for i := range y {
			y[i] = r.NormFloat64() * 5
		}
		x, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
		if err != nil {
			return false
		}
		hx, _ := h.MulVec(x)
		resid := make([]float64, m)
		for i := range resid {
			resid[i] = y[i] - hx[i]
		}
		ortho, _ := h.TMulVec(resid)
		for _, v := range ortho {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQRValidation(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	if _, err := LeastSquaresQR(a, []float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	wide, _ := FromRows([][]float64{{1, 0, 0}})
	if _, err := LeastSquaresQR(wide, []float64{1}); err == nil {
		t.Fatal("wide matrix must error")
	}
	rankDef, _ := FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	if _, err := LeastSquaresQR(rankDef, []float64{1, 1, 1}); err == nil {
		t.Fatal("rank-deficient matrix must error")
	}
}

func TestCGEdgeCases(t *testing.T) {
	h := randomFullRank(rand.New(rand.NewSource(5)), 6, 3)
	if _, err := SolveNormalEquationsCG(h, make([]float64, 2), CGOptions{}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	x, err := SolveNormalEquationsCG(h, make([]float64, 6), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(x, make([]float64, 3), 0) {
		t.Fatalf("zero rhs must give zero solution, got %v", x)
	}
}

func TestNormalEquationsEdgeCases(t *testing.T) {
	h, _ := NewCSR(3, 0, nil)
	x, err := SolveNormalEquations(h, make([]float64, 3), LeastSquaresOptions{})
	if err != nil || x != nil {
		t.Fatalf("empty system: %v %v", x, err)
	}
	h2 := paperFig2H(t)
	if _, err := SolveNormalEquations(h2, make([]float64, 2), LeastSquaresOptions{}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestResidualInColumnSpace(t *testing.T) {
	h := paperFig2H(t)
	// A vector in the column space: sum of columns.
	in := []float64{1, 1, 2, 0, 1, 3}
	ok, rel, err := ResidualInColumnSpace(h, in, 1e-8)
	if err != nil || !ok {
		t.Fatalf("in-space vector flagged out (rel=%g err=%v)", rel, err)
	}
	// The paper's Y' from Fig 2 is NOT in the column space (Δ != 0).
	out := []float64{3, 3, 4, 3, 8, 12}
	ok, rel, err = ResidualInColumnSpace(h, out, 1e-8)
	if err != nil || ok {
		t.Fatalf("out-of-space vector flagged in (rel=%g err=%v)", rel, err)
	}
	// Zero vector is trivially inside.
	ok, _, err = ResidualInColumnSpace(h, make([]float64, 6), 1e-8)
	if err != nil || !ok {
		t.Fatal("zero vector must be in space")
	}
	if _, _, err := ResidualInColumnSpace(h, make([]float64, 2), 1e-8); err == nil {
		t.Fatal("dim mismatch must error")
	}
}
