package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(r *rand.Rand, rows, cols int, density float64) *CSR {
	var entries []Triplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				entries = append(entries, Triplet{Row: i, Col: j, Val: float64(1 + r.Intn(4))})
			}
		}
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		panic(err)
	}
	return m
}

func TestCSRConstructionAndAt(t *testing.T) {
	m, err := NewCSR(3, 3, []Triplet{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 3}, // duplicate, summed
		{Row: 1, Col: 1, Val: 0}, // zero, dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5 (summed)", m.At(0, 1))
	}
	if m.At(1, 1) != 0 || m.NNZ() != 2 {
		t.Fatalf("zero entry kept: nnz=%d", m.NNZ())
	}
	if m.RowNNZ(0) != 1 || m.RowNNZ(1) != 0 {
		t.Fatalf("RowNNZ wrong")
	}
	if _, err := NewCSR(2, 2, []Triplet{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Fatal("out-of-range triplet must error")
	}
}

func TestCSRCancellingDuplicates(t *testing.T) {
	m, err := NewCSR(1, 1, []Triplet{{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 0, Val: -2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("cancelled duplicates must drop out, nnz=%d", m.NNZ())
	}
}

func TestCSRMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		m := randomCSR(r, rows, cols, 0.3)
		d := m.ToDense()
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(got, want, 1e-9) {
			t.Fatalf("MulVec mismatch: %v vs %v", got, want)
		}
		xr := make([]float64, rows)
		for i := range xr {
			xr[i] = r.NormFloat64()
		}
		gotT, err := m.TMulVec(xr)
		if err != nil {
			t.Fatal(err)
		}
		wantT, err := d.TMulVec(xr)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(gotT, wantT, 1e-9) {
			t.Fatalf("TMulVec mismatch: %v vs %v", gotT, wantT)
		}
		if !m.Gram().EqualApprox(d.Gram(), 1e-9) {
			t.Fatal("Gram mismatch")
		}
	}
}

func TestCSRDimErrors(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(1)), 3, 4, 0.5)
	if _, err := m.MulVec(make([]float64, 3)); err == nil {
		t.Fatal("MulVec dim mismatch must error")
	}
	if _, err := m.TMulVec(make([]float64, 4)); err == nil {
		t.Fatal("TMulVec dim mismatch must error")
	}
}

func TestSubMatrix(t *testing.T) {
	m, err := NewCSR(4, 3, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 2},
		{Row: 2, Col: 2, Val: 3},
		{Row: 3, Col: 0, Val: 4},
		{Row: 3, Col: 2, Val: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubMatrix([]int{3, 1}, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows() != 2 || sub.Cols() != 2 {
		t.Fatalf("sub dims %dx%d", sub.Rows(), sub.Cols())
	}
	// Row 0 of sub = original row 3 restricted to cols (2,0) -> (5,4).
	if sub.At(0, 0) != 5 || sub.At(0, 1) != 4 {
		t.Fatalf("sub row 0 = (%v,%v)", sub.At(0, 0), sub.At(0, 1))
	}
	// Row 1 of sub = original row 1: col 1 excluded -> all zero.
	if sub.RowNNZ(1) != 0 {
		t.Fatal("excluded column leaked into submatrix")
	}
	if _, err := m.SubMatrix([]int{9}, []int{0}); err == nil {
		t.Fatal("bad row must error")
	}
	if _, err := m.SubMatrix([]int{0}, []int{9}); err == nil {
		t.Fatal("bad col must error")
	}
}

func TestAppendColumnAndColumn(t *testing.T) {
	m, err := NewCSR(3, 1, []Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.AppendColumn([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cols() != 2 || m2.At(1, 1) != 1 || m2.At(2, 1) != 1 || m2.At(0, 1) != 0 {
		t.Fatalf("AppendColumn wrong: %v", m2.ToDense())
	}
	col := m2.Column(0)
	if len(col) != 2 || col[0] != 0 || col[1] != 2 {
		t.Fatalf("Column = %v", col)
	}
}

func TestRowEntries(t *testing.T) {
	m, _ := NewCSR(2, 3, []Triplet{{Row: 0, Col: 2, Val: 7}, {Row: 0, Col: 0, Val: 1}})
	var cols []int
	var sum float64
	m.RowEntries(0, func(c int, v float64) {
		cols = append(cols, c)
		sum += v
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || sum != 8 {
		t.Fatalf("RowEntries cols=%v sum=%v", cols, sum)
	}
}

func TestPropertyCSRGramSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 1+r.Intn(8), 1+r.Intn(8), 0.4)
		g := m.Gram()
		for i := 0; i < g.Rows(); i++ {
			for j := 0; j < g.Cols(); j++ {
				if g.At(i, j) != g.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
