package matrix

// Parallel, cache-blocked kernels for the heavy baseline-preparation
// linear algebra: sparse Gram assembly (HᵀH), blocked right-looking
// Cholesky, and multi-RHS triangular solves. The kernels are exact
// drop-in replacements for the serial reference paths:
//
//   - parallel Gram is bitwise identical to GramSerial for any worker
//     count, because every output entry is accumulated by exactly one
//     worker in the same (ascending input-row) order the serial loop
//     uses, and the mirrored lower triangle copies the upper triangle
//     (va*vb and vb*va are the same float64);
//   - blocked Cholesky is dispatched purely by matrix size (never by
//     worker count), so a given matrix always takes the same code path
//     on every machine and the factor is bitwise reproducible across
//     GOMAXPROCS settings; it agrees with the unblocked sweep to
//     floating-point roundoff and reports the identical first
//     non-positive pivot on failure.
//
// Package-wide defaults are configured with SetKernelDefaults; zero
// fields in a KernelOptions value inherit those defaults.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// KernelOptions tunes the parallel kernels. The zero value inherits the
// package defaults (see SetKernelDefaults); a zero default resolves to
// Workers = GOMAXPROCS and BlockSize = 64.
type KernelOptions struct {
	// Workers caps the number of goroutines (including the caller) used
	// by a kernel invocation. 0 inherits the package default; the
	// default of the default is runtime.GOMAXPROCS(0).
	Workers int
	// BlockSize is the Cholesky panel width. 0 inherits the package
	// default (64). Matrices smaller than 2×BlockSize use the unblocked
	// sweep. BlockSize — not Workers — decides blocked-vs-unblocked
	// dispatch so results never depend on core count.
	BlockSize int
	// Serial forces the serial reference kernels regardless of Workers,
	// for benchmarking and equivalence testing.
	Serial bool
	// Sparse selects the normal-equations factorization backend used by
	// PrepareLS: SparseAuto (density-gated), SparseAlways, or
	// SparseNever. The zero value (SparseAuto) inherits the package
	// default.
	Sparse SparseMode
	// SparseDensity is the Gram-density threshold at or below which
	// SparseAuto picks the sparse path. 0 inherits the package default
	// (0.125).
	SparseDensity float64
	// SparseMinCols is the minimum system width before SparseAuto even
	// considers the sparse path; below it the dense kernels win outright.
	// 0 inherits the package default (512).
	SparseMinCols int
}

// SparseMode selects the PrepareLS factorization backend.
type SparseMode int

const (
	// SparseAuto assembles the sparse Gram for wide systems and picks the
	// sparse factorization when its density is at or below the
	// SparseDensity threshold; otherwise the Gram is scattered to dense
	// and the dense kernels run exactly as before.
	SparseAuto SparseMode = iota
	// SparseAlways forces the sparse direct path.
	SparseAlways
	// SparseNever forces the dense path.
	SparseNever
)

func (m SparseMode) String() string {
	switch m {
	case SparseAlways:
		return "sparse"
	case SparseNever:
		return "dense"
	default:
		return "auto"
	}
}

const (
	defaultBlockSize     = 64
	defaultSparseDensity = 0.125
	defaultSparseMinCols = 512
)

// kernelDefaults holds the package-wide KernelOptions. Access is atomic
// so tests and daemons may flip defaults without racing hot paths.
var kernelDefaults atomic.Pointer[KernelOptions]

// SetKernelDefaults replaces the package-wide kernel defaults and
// returns the previous value, so callers can restore it:
//
//	prev := matrix.SetKernelDefaults(matrix.KernelOptions{Serial: true})
//	defer matrix.SetKernelDefaults(prev)
func SetKernelDefaults(o KernelOptions) KernelOptions {
	prev := kernelDefaults.Swap(&o)
	if prev == nil {
		return KernelOptions{}
	}
	return *prev
}

// KernelDefaults returns the current package-wide kernel defaults.
func KernelDefaults() KernelOptions {
	if p := kernelDefaults.Load(); p != nil {
		return *p
	}
	return KernelOptions{}
}

// resolveKernel fills zero fields of o from the package defaults and
// then from the hard-coded fallbacks.
func resolveKernel(o KernelOptions) (workers, blockSize int, serial bool) {
	d := KernelDefaults()
	serial = o.Serial || d.Serial
	workers = o.Workers
	if workers == 0 {
		workers = d.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blockSize = o.BlockSize
	if blockSize == 0 {
		blockSize = d.BlockSize
	}
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	return workers, blockSize, serial
}

// resolveSparse fills the sparse-selection fields of o from the package
// defaults and then from the hard-coded fallbacks.
func resolveSparse(o KernelOptions) (mode SparseMode, minCols int, density float64) {
	d := KernelDefaults()
	mode = o.Sparse
	if mode == SparseAuto {
		mode = d.Sparse
	}
	minCols = o.SparseMinCols
	if minCols == 0 {
		minCols = d.SparseMinCols
	}
	if minCols <= 0 {
		minCols = defaultSparseMinCols
	}
	density = o.SparseDensity
	if density == 0 {
		density = d.SparseDensity
	}
	if density <= 0 {
		density = defaultSparseDensity
	}
	return mode, minCols, density
}

// KernelWorkers reports the worker count the default kernel options
// resolve to (≥1). core and churn use it to size construction-time
// fan-outs so one knob governs all preparation parallelism.
func KernelWorkers() int {
	w, _, serial := resolveKernel(KernelOptions{})
	if serial {
		return 1
	}
	return w
}

// parallelRanges splits [0, n) into contiguous chunks of about grain
// elements and runs fn(lo, hi) on up to workers goroutines, with the
// caller participating. It returns after every chunk has completed.
// Chunks are claimed dynamically so uneven per-range cost (e.g. the
// triangular trailing update) still balances.
func parallelRanges(n, workers, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// FanOut runs fn(i) for every i in [0, n) across up to workers
// goroutines (caller included). It is a construction-phase helper for
// fanning independent slice-engine builds; per-index order within a
// worker is ascending but cross-worker order is unspecified, so fn must
// write only to index-owned state.
func FanOut(n, workers int, fn func(i int)) {
	parallelRanges(n, workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// minParallelGramCols gates the parallel Gram path: below this many
// output columns the CSC index build costs more than it saves.
const minParallelGramCols = 96

// GramOpts computes mᵀ*m like Gram with explicit kernel options.
func (m *CSR) GramOpts(o KernelOptions) *Dense {
	workers, _, serial := resolveKernel(o)
	if serial || workers <= 1 || m.cols < minParallelGramCols || len(m.val) == 0 {
		return m.GramSerial()
	}
	return m.gramParallel(workers)
}

// GramSerial is the serial reference Gram kernel: it accumulates the
// outer product of every sparse row. Cost is Σᵢ nnz(rowᵢ)², which is
// small for FCMs because a rule matches a bounded number of flows.
func (m *CSR) GramSerial() *Dense {
	g := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for a := lo; a < hi; a++ {
			ca, va := m.colIdx[a], m.val[a]
			grow := g.Row(ca)
			for b := lo; b < hi; b++ {
				grow[m.colIdx[b]] += va * m.val[b]
			}
		}
	}
	return g
}

// gramParallel partitions the Gram rows (= H columns) across workers.
// A transient ColumnIndex maps each output row ca to the CSR entry
// positions holding column ca, so the worker owning ca can replay, in
// ascending input-row order, exactly the accumulations the serial loop
// performs into g.Row(ca) — restricted to the upper triangle cb ≥ ca,
// which within an input row is just the entries at positions ≥ the
// position of ca. A second pass mirrors the upper triangle, partitioned
// by destination row. Both passes write disjoint row ranges, and the
// per-entry accumulation order matches GramSerial, so the result is
// bitwise identical for any worker count.
func (m *CSR) gramParallel(workers int) *Dense {
	g := NewDense(m.cols, m.cols)
	ix := NewColumnIndex(m)
	grain := gramGrain(m.cols, workers)
	// Pass 1: upper triangle, each worker owns a range of output rows.
	parallelRanges(m.cols, workers, grain, func(lo, hi int) {
		for ca := lo; ca < hi; ca++ {
			grow := g.Row(ca)
			for p := ix.colPtr[ca]; p < ix.colPtr[ca+1]; p++ {
				k := int(ix.pos[p])
				va := m.val[k]
				end := int(ix.end[p])
				for q := k; q < end; q++ {
					grow[m.colIdx[q]] += va * m.val[q]
				}
			}
		}
	})
	// Pass 2: mirror the strict upper triangle, owned by destination row.
	parallelRanges(m.cols, workers, grain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			rowj := g.Row(j)
			for i := 0; i < j; i++ {
				rowj[i] = g.Row(i)[j]
			}
		}
	})
	return g
}

func gramGrain(n, workers int) int {
	g := n / (workers * 8)
	if g < 8 {
		g = 8
	}
	return g
}

// NewCholeskyOpts factors a like NewCholesky with explicit kernel
// options.
func NewCholeskyOpts(a *Dense, o KernelOptions) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("matrix: cholesky needs square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	workers, blockSize, serial := resolveKernel(o)
	if serial || a.Rows() < 2*blockSize {
		return newCholeskyUnblocked(a)
	}
	return newCholeskyBlocked(a, blockSize, workers)
}

// newCholeskyBlocked is the right-looking blocked factorization: for
// each panel [kb, ke) it (1) factors the diagonal block with the
// unblocked sweep, (2) solves the sub-diagonal panel rows against the
// block's triangle, and (3) applies the symmetric rank-k trailing
// update, with steps 2–3 fanned across workers by trailing-row range.
// Each trailing row is updated by exactly one worker with a fixed
// per-entry reduction order, so the factor is bitwise reproducible for
// any worker count (though it differs from the unblocked sweep by
// roundoff, since partial sums are grouped per panel).
func newCholeskyBlocked(a *Dense, blockSize, workers int) (*Cholesky, error) {
	n := a.Rows()
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(l.Row(i)[:i+1], a.Row(i)[:i+1])
	}
	for kb := 0; kb < n; kb += blockSize {
		ke := kb + blockSize
		if ke > n {
			ke = n
		}
		// Diagonal block factor. Contributions from columns < kb were
		// already subtracted by earlier trailing updates, so only
		// within-panel columns participate here.
		for j := kb; j < ke; j++ {
			ljRow := l.Row(j)
			diag := ljRow[j]
			for k := kb; k < j; k++ {
				diag -= ljRow[k] * ljRow[k]
			}
			if diag <= 0 || math.IsNaN(diag) {
				return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, diag)
			}
			d := math.Sqrt(diag)
			ljRow[j] = d
			for i := j + 1; i < ke; i++ {
				liRow := l.Row(i)
				s := liRow[j]
				for k := kb; k < j; k++ {
					s -= liRow[k] * ljRow[k]
				}
				liRow[j] = s / d
			}
		}
		if ke == n {
			break
		}
		// Panel solve: rows ke..n against the diagonal block's triangle
		// (reads finalized panel rows, writes only the owned row).
		parallelRanges(n-ke, workers, 16, func(lo, hi int) {
			for i := ke + lo; i < ke+hi; i++ {
				liRow := l.Row(i)
				for j := kb; j < ke; j++ {
					ljRow := l.Row(j)
					s := liRow[j]
					for k := kb; k < j; k++ {
						s -= liRow[k] * ljRow[k]
					}
					liRow[j] = s / ljRow[j]
				}
			}
		})
		// Symmetric rank-k trailing update of the lower triangle:
		// l[i][j] -= Σ_{k∈panel} l[i][k]·l[j][k] for ke ≤ j ≤ i. Reads
		// touch only panel columns (not written here); writes touch only
		// the owned row's trailing columns.
		parallelRanges(n-ke, workers, 8, func(lo, hi int) {
			for i := ke + lo; i < ke+hi; i++ {
				liRow := l.Row(i)
				panelI := liRow[kb:ke]
				for j := ke; j <= i; j++ {
					panelJ := l.Row(j)[kb:ke]
					var s float64
					for k, v := range panelI {
						s += v * panelJ[k]
					}
					liRow[j] -= s
				}
			}
		})
	}
	return &Cholesky{n: n, l: l, lt: l.Transpose()}, nil
}

// SolveManyInto solves A X = B for k right-hand sides given as the
// columns of the n×k matrix b, writing the solutions into the columns
// of dst. scratch is an n×k workspace for the forward-substitution
// intermediate; it must not alias dst or b (dst may alias b). Each
// column's arithmetic matches SolveInto operation-for-operation, so
// column r of dst is bitwise identical to a single SolveInto on column
// r — batching changes memory traffic, never results.
func (c *Cholesky) SolveManyInto(dst, b, scratch *Dense) error {
	k := b.Cols()
	if b.Rows() != c.n || dst.Rows() != c.n || scratch.Rows() != c.n {
		return fmt.Errorf("matrix: cholesky solve-many rows %d/%d/%d vs %d", dst.Rows(), b.Rows(), scratch.Rows(), c.n)
	}
	if dst.Cols() != k || scratch.Cols() != k {
		return fmt.Errorf("matrix: cholesky solve-many cols %d/%d vs %d", dst.Cols(), scratch.Cols(), k)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	// Forward substitution: L Y = B, streaming rows of L.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		yi := scratch.Row(i)
		copy(yi, b.Row(i))
		for j := 0; j < i; j++ {
			lij := row[j]
			yj := scratch.Row(j)
			for r := range yi {
				yi[r] -= lij * yj[r]
			}
		}
		d := row[i]
		for r := range yi {
			yi[r] /= d
		}
	}
	// Back substitution: Lᵀ X = Y, streaming rows of Lᵀ.
	for i := c.n - 1; i >= 0; i-- {
		row := c.lt.Row(i)
		xi := dst.Row(i)
		copy(xi, scratch.Row(i))
		for j := i + 1; j < c.n; j++ {
			lij := row[j]
			xj := dst.Row(j)
			for r := range xi {
				xi[r] -= lij * xj[r]
			}
		}
		d := row[i]
		for r := range xi {
			xi[r] /= d
		}
	}
	return nil
}
