package matrix

// Fill-reducing ordering for the sparse Cholesky path: a deterministic
// quotient-graph minimum-degree heuristic with element absorption and
// AMD-style approximate external degrees. Any permutation returned here
// is *correct* — the symbolic and numeric phases work for arbitrary
// orders — the heuristic only controls how much fill the factor takes,
// so the implementation favours simplicity and strict determinism
// (degree buckets scanned low-to-high, ties broken by insertion
// discipline that depends only on node indices) over the last few
// percent of fill quality. Supervariable detection and aggressive
// absorption from full AMD are deliberately omitted.

// amdOrder returns a fill-reducing elimination order for the symmetric
// pattern whose off-diagonal adjacency is (adjPtr, adj): perm[k] is the
// node eliminated at step k. The input adjacency is not modified.
func amdOrder(n int, adjPtr []int, adj []int32) []int32 {
	perm := make([]int32, 0, n)
	if n == 0 {
		return perm
	}
	// Remaining variable-variable adjacency (pruned as elements form).
	varAdj := make([][]int32, n)
	for i := 0; i < n; i++ {
		nbrs := adj[adjPtr[i]:adjPtr[i+1]]
		varAdj[i] = append(make([]int32, 0, len(nbrs)), nbrs...)
	}
	// elems[i]: element ids adjacent to variable i. elemNodes[e]: the
	// variable list of element e (nil once absorbed). Element ids reuse
	// the pivot's node id.
	elems := make([][]int32, n)
	elemNodes := make([][]int32, n)
	eliminated := make([]bool, n)
	deg := make([]int, n)
	// Degree buckets as doubly-linked lists for O(1) moves.
	head := make([]int32, n)
	next := make([]int32, n)
	prev := make([]int32, n)
	for d := range head {
		head[d] = -1
	}
	var bucketRemove = func(i int32) {
		if prev[i] != -1 {
			next[prev[i]] = next[i]
		} else {
			head[deg[i]] = next[i]
		}
		if next[i] != -1 {
			prev[next[i]] = prev[i]
		}
	}
	var bucketInsert = func(i int32) {
		d := deg[i]
		prev[i] = -1
		next[i] = head[d]
		if head[d] != -1 {
			prev[head[d]] = i
		}
		head[d] = i
	}
	// Deterministic initial fill: inserting nodes in descending index
	// order leaves each bucket list in ascending index order, so the
	// first pop is the lowest-index node of minimum degree.
	for i := n - 1; i >= 0; i-- {
		deg[i] = adjPtr[i+1] - adjPtr[i]
		bucketInsert(int32(i))
	}
	mark := make([]int32, n) // stamped with the pivot step
	for i := range mark {
		mark[i] = -1
	}
	lp := make([]int32, 0, 64)
	minDeg := 0
	for step := int32(0); int(step) < n; step++ {
		for minDeg < n && head[minDeg] == -1 {
			minDeg++
		}
		p := head[minDeg]
		bucketRemove(p)
		eliminated[p] = true
		perm = append(perm, p)
		// Build Lp = (varAdj[p] ∪ ⋃ elemNodes[e]) \ eliminated \ {p}:
		// the variables of the new element formed by eliminating p.
		lp = lp[:0]
		mark[p] = step
		for _, v := range varAdj[p] {
			if !eliminated[v] && mark[v] != step {
				mark[v] = step
				lp = append(lp, v)
			}
		}
		for _, e := range elems[p] {
			en := elemNodes[e]
			if en == nil {
				continue // absorbed earlier
			}
			for _, v := range en {
				if !eliminated[v] && mark[v] != step {
					mark[v] = step
					lp = append(lp, v)
				}
			}
			elemNodes[e] = nil // absorbed into the new element p
		}
		elems[p] = nil
		varAdj[p] = nil
		if len(lp) == 0 {
			elemNodes[p] = nil
			continue
		}
		en := make([]int32, len(lp))
		copy(en, lp)
		elemNodes[p] = en
		// Update every variable adjacent to the new element: prune its
		// variable adjacency of Lp ∪ {p} (those couplings now flow through
		// the element), drop absorbed elements, attach p, and recompute
		// its approximate degree.
		for _, i := range lp {
			va := varAdj[i][:0]
			for _, v := range varAdj[i] {
				if v != p && !eliminated[v] && mark[v] != step {
					va = append(va, v)
				}
			}
			varAdj[i] = va
			el := elems[i][:0]
			for _, e := range elems[i] {
				if elemNodes[e] != nil {
					el = append(el, e)
				}
			}
			el = append(el, p)
			elems[i] = el
			d := len(va)
			for _, e := range el {
				d += len(elemNodes[e]) - 1
			}
			if d > n-1 {
				d = n - 1
			}
			bucketRemove(i)
			deg[i] = d
			bucketInsert(i)
			if d < minDeg {
				minDeg = d
			}
		}
	}
	return perm
}
