package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. FOCES flow-counter matrices are
// extremely sparse (a rule row has 1s only for the flows matching it),
// so all heavy products are computed in CSR form.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// Triplet is one (row, col, value) entry for sparse construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries
// are summed. Entries with zero value are kept out.
func NewCSR(rows, cols int, entries []Triplet) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("matrix: triplet (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, sorted[i].Col)
			m.val = append(m.val, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Rows reports the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ reports the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.val) }

// RowNNZ reports the number of non-zeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// RowEntries invokes fn for every stored entry of row i.
func (m *CSR) RowEntries(i int, fn func(col int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// At returns element (i, j) (zero when not stored).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// MulVec computes m * x.
func (m *CSR) MulVec(x []float64) ([]float64, error) {
	y := make([]float64, m.rows)
	if err := m.MulVecInto(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// MulVecInto computes m * x into dst (length Rows) without allocating.
func (m *CSR) MulVecInto(dst, x []float64) error {
	if len(x) != m.cols {
		return fmt.Errorf("matrix: csr mulvec dims %dx%d vs %d", m.rows, m.cols, len(x))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("matrix: csr mulvec dst %d vs %d rows", len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return nil
}

// TMulVec computes mᵀ * x.
func (m *CSR) TMulVec(x []float64) ([]float64, error) {
	y := make([]float64, m.cols)
	if err := m.TMulVecInto(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// TMulVecInto computes mᵀ * x into dst (length Cols) without
// allocating.
func (m *CSR) TMulVecInto(dst, x []float64) error {
	if len(x) != m.rows {
		return fmt.Errorf("matrix: csr tmulvec dims %dx%d vs %d", m.rows, m.cols, len(x))
	}
	if len(dst) != m.cols {
		return fmt.Errorf("matrix: csr tmulvec dst %d vs %d cols", len(dst), m.cols)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * xi
		}
	}
	return nil
}

// Gram computes mᵀ * m as a dense symmetric matrix. Large matrices are
// assembled by the parallel row-partitioned kernel under the package
// kernel defaults (see kernels.go); the result is bitwise identical to
// GramSerial for every worker count.
func (m *CSR) Gram() *Dense {
	return m.GramOpts(KernelOptions{})
}

// ToDense expands the matrix to dense form (for tests and small
// examples).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// SubMatrix extracts the CSR sub-matrix with the given row and column
// subsets (in the given order). Column indices are remapped to the
// position of each column in cols. This implements FCM slicing (§IV-B).
func (m *CSR) SubMatrix(rows, cols []int) (*CSR, error) {
	colPos := make(map[int]int, len(cols))
	for p, c := range cols {
		if c < 0 || c >= m.cols {
			return nil, fmt.Errorf("matrix: submatrix col %d outside %d", c, m.cols)
		}
		colPos[c] = p
	}
	var entries []Triplet
	for p, r := range rows {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("matrix: submatrix row %d outside %d", r, m.rows)
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if cp, ok := colPos[m.colIdx[k]]; ok {
				entries = append(entries, Triplet{Row: p, Col: cp, Val: m.val[k]})
			}
		}
	}
	return NewCSR(len(rows), len(cols), entries)
}

// AppendColumn returns a new CSR with one extra column whose entries are
// given by rows with value 1 (used to form H̃ = H ∪ {h'} for the
// detectability analysis).
func (m *CSR) AppendColumn(rowsWithOne []int) (*CSR, error) {
	entries := make([]Triplet, 0, m.NNZ()+len(rowsWithOne))
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			entries = append(entries, Triplet{Row: i, Col: m.colIdx[k], Val: m.val[k]})
		}
	}
	for _, r := range rowsWithOne {
		entries = append(entries, Triplet{Row: r, Col: m.cols, Val: 1})
	}
	return NewCSR(m.rows, m.cols+1, entries)
}

// Column returns the row indices of non-zero entries in column j, in
// ascending order. Each call walks every row with a binary search
// (O(rows·log nnz)); passes that visit many columns — sparse Gram
// assembly, symbolic analysis — must build a ColumnIndex once and sweep
// it instead.
func (m *CSR) Column(j int) []int {
	var out []int
	for i := 0; i < m.rows; i++ {
		if m.At(i, j) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ColumnIndex is a transient column-major view of a CSR matrix: for
// every column it records the positions of that column's entries in the
// CSR storage, in ascending row order, plus the owning row's end
// offset. Building it is one O(nnz) counting pass; afterwards each
// column sweep costs O(nnz(column)) instead of the O(rows·log nnz)
// binary-search walk that repeated CSR.Column calls perform. The index
// is a snapshot — it must be rebuilt if the matrix changes (CSR values
// are immutable in practice, so in this codebase it never is).
type ColumnIndex struct {
	m      *CSR
	colPtr []int   // column c's entries sit at pos[colPtr[c]:colPtr[c+1]]
	pos    []int32 // positions into m.colIdx/m.val, ascending row order
	end    []int32 // owning row's end offset m.rowPtr[row+1], per position
	row    []int32 // owning row, per position
}

// NewColumnIndex builds the column index of m in O(nnz).
func NewColumnIndex(m *CSR) *ColumnIndex {
	nnz := len(m.val)
	ix := &ColumnIndex{
		m:      m,
		colPtr: make([]int, m.cols+1),
		pos:    make([]int32, nnz),
		end:    make([]int32, nnz),
		row:    make([]int32, nnz),
	}
	for _, c := range m.colIdx {
		ix.colPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		ix.colPtr[c+1] += ix.colPtr[c]
	}
	fill := make([]int, m.cols)
	copy(fill, ix.colPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		end := int32(m.rowPtr[i+1])
		for k := m.rowPtr[i]; int32(k) < end; k++ {
			c := m.colIdx[k]
			p := fill[c]
			ix.pos[p] = int32(k)
			ix.end[p] = end
			ix.row[p] = int32(i)
			fill[c]++
		}
	}
	return ix
}

// ColNNZ reports the number of stored entries in column j.
func (ix *ColumnIndex) ColNNZ(j int) int { return ix.colPtr[j+1] - ix.colPtr[j] }

// Column appends the row indices of column j's entries (ascending) to
// dst and returns the extended slice.
func (ix *ColumnIndex) Column(j int, dst []int) []int {
	for p := ix.colPtr[j]; p < ix.colPtr[j+1]; p++ {
		dst = append(dst, int(ix.row[p]))
	}
	return dst
}

// ColumnEntries invokes fn for every entry of column j in ascending row
// order.
func (ix *ColumnIndex) ColumnEntries(j int, fn func(row int, v float64)) {
	for p := ix.colPtr[j]; p < ix.colPtr[j+1]; p++ {
		fn(int(ix.row[p]), ix.m.val[ix.pos[p]])
	}
}
