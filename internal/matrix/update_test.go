package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds A = BᵀB + I for a random B, guaranteeing a
// well-conditioned SPD matrix.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Gram()
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	return a
}

func factorEqualApprox(t *testing.T, got, want *Cholesky, tol float64) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("factor dims %d vs %d", got.n, want.n)
	}
	if !got.l.EqualApprox(want.l, tol) {
		t.Fatalf("L mismatch:\ngot\n%v\nwant\n%v", got.l, want.l)
	}
	if !got.lt.EqualApprox(want.lt, tol) {
		t.Fatalf("Lᵀ mismatch (stale transpose?):\ngot\n%v\nwant\n%v", got.lt, want.lt)
	}
}

func TestCholeskyUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSPD(rng, n)
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		up := chol.Clone()
		if err := up.Update(x); err != nil {
			t.Fatalf("n=%d update: %v", n, err)
		}
		// Reference: factor A + xxᵀ from scratch.
		ref := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ref.Add(i, j, x[i]*x[j])
			}
		}
		want, err := NewCholesky(ref)
		if err != nil {
			t.Fatalf("n=%d refactor: %v", n, err)
		}
		factorEqualApprox(t, up, want, 1e-9)
		// The original factor must be untouched by Clone+Update.
		orig, _ := NewCholesky(a)
		factorEqualApprox(t, chol, orig, 0)
	}
}

func TestCholeskyDowndateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Downdate is only defined when A − xxᵀ stays PD; build A as
		// base + xxᵀ so removal is exact.
		upd := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				upd.Add(i, j, x[i]*x[j])
			}
		}
		chol, err := NewCholesky(upd)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		down := chol.Clone()
		if err := down.Downdate(x); err != nil {
			t.Fatalf("n=%d downdate: %v", n, err)
		}
		want, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d refactor: %v", n, err)
		}
		factorEqualApprox(t, down, want, 1e-8)
	}
}

func TestCholeskyDowndateNotPD(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	err = chol.Downdate([]float64{2, 0}) // I − xxᵀ has a −3 eigenvalue
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyUpdateSolveAgrees(t *testing.T) {
	// End-to-end: solve (A + xxᵀ) z = b via the updated factor and
	// compare against a fresh factorization's solution.
	rng := rand.New(rand.NewSource(3))
	n := 20
	a := randomSPD(rng, n)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	b := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	up := chol.Clone()
	if err := up.Update(x); err != nil {
		t.Fatal(err)
	}
	got, err := up.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ref.Add(i, j, x[i]*x[j])
		}
	}
	want, err := NewCholesky(ref)
	if err != nil {
		t.Fatal(err)
	}
	wz, err := want.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(got, wz, 1e-9) {
		t.Fatalf("solve mismatch:\ngot  %v\nwant %v", got, wz)
	}
}

func TestCholeskyUpdateDimMismatch(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(1)), 3)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := chol.Update([]float64{1, 2}); err == nil {
		t.Fatal("update accepted wrong-length vector")
	}
	if err := chol.Downdate([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("downdate accepted wrong-length vector")
	}
}

func TestCholeskyUpdateDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 6)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 3, 0.5, -0.25, 4}
	saved := append([]float64(nil), x...)
	if err := chol.Update(x); err != nil {
		t.Fatal(err)
	}
	if err := chol.Downdate(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != saved[i] {
			t.Fatalf("input mutated at %d: %g vs %g", i, x[i], saved[i])
		}
	}
}

func TestNewPreparedLSFromFactor(t *testing.T) {
	// Build H, prepare it, then rebuild an engine from a cloned factor
	// and check identical solves; a dimension mismatch must error.
	rows := [][]float64{{1, 0}, {1, 1}, {0, 1}, {1, 1}}
	var trips []Triplet
	for i, r := range rows {
		for j, v := range r {
			if v != 0 {
				trips = append(trips, Triplet{Row: i, Col: j, Val: v})
			}
		}
	}
	csr, err := NewCSR(4, 2, trips)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PrepareLS(csr, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPreparedLSFromFactor(csr, p.Factor().Clone(), p.Ridge())
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{3, 7, 4, 7}
	a, err := p.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] || math.IsNaN(a[i]) {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
	bad, err := NewCSR(4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPreparedLSFromFactor(bad, p.Factor(), 0); err == nil {
		t.Fatal("accepted mismatched factor dimension")
	}
}
