// Package matrix provides the dense and sparse linear algebra needed by
// the FOCES equation-system solver: flow-counter matrices are stored as
// sparse CSR, normal equations are assembled into dense symmetric
// matrices and solved by Cholesky factorization, with Householder QR and
// conjugate-gradient alternatives for ablation.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a dense matrix from row slices, which must all have
// equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged row %d: len %d != %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows reports the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i backed by the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes m * x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("matrix: mulvec dims %dx%d vs %d", m.rows, m.cols, len(x))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// TMulVec computes mᵀ * x.
func (m *Dense) TMulVec(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("matrix: tmulvec dims %dx%d vs %d", m.rows, m.cols, len(x))
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y, nil
}

// Mul computes a * b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: mul dims %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Gram computes mᵀ * m (the normal-equations matrix).
func (m *Dense) Gram() *Dense {
	g := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b, vb := range row {
				grow[b] += va * vb
			}
		}
	}
	return g
}

// EqualApprox reports whether two matrices agree element-wise within tol.
func (m *Dense) EqualApprox(o *Dense, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}

// VecEqualApprox reports element-wise agreement of two vectors within
// tol.
func VecEqualApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Dot computes the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 computes the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AbsDiff returns |a - b| element-wise (the Δ error vector of Eq. 5).
func AbsDiff(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("matrix: absdiff lengths %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out, nil
}
