package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sparse direct Cholesky. The factor of P·G·Pᵀ = L·Lᵀ is stored in the
// pattern computed by the symbolic analysis (lower CSC, diagonal
// first), and the numeric phase is left-looking supernodal: each
// supernode gathers its columns into a dense panel, applies the
// contributions of descendant supernodes as dense outer products over
// contiguous CSC column suffixes, factors the dense diagonal block with
// the PR-5 blocked kernel (unblocked in place for narrow supernodes,
// exactly mirroring the dense dispatch rule), and solves the
// sub-diagonal panel rows against the block's triangle. Everything is
// deterministic: supernodes are processed in ascending order and each
// descendant list is maintained by the same push discipline on every
// run.

// ErrSparseUpdateFill is returned by SparseCholesky.Update/Downdate
// when the rank-one vector would create fill outside the factor's
// symbolic pattern. The factor is NOT modified in that case — the
// structural precheck runs before any value is touched — so callers
// (the churn manager) can fall back to a full refactorization while the
// original factor keeps serving solves.
var ErrSparseUpdateFill = errors.New("matrix: rank-one update would fill outside the factor pattern")

// SparseCholesky is a sparse Cholesky factorization sharing an
// immutable cached symbolic analysis. Value storage is aligned with the
// symbolic pattern, so clones and numeric refactorizations reuse the
// analysis for free.
type SparseCholesky struct {
	sym      *SparseSymbolic
	val      []float64
	poisoned bool
}

// NewSparseCholesky analyzes and factors the sparse symmetric
// positive-definite matrix g. Use newSparseCholeskyWith to reuse a
// cached analysis.
func NewSparseCholesky(g *SymSparse, o KernelOptions) (*SparseCholesky, error) {
	return newSparseCholeskyWith(g, analyzeSparse(g), o)
}

// newSparseCholeskyWith numerically factors g under a previously
// computed symbolic analysis (which must have been computed for exactly
// g's pattern).
func newSparseCholeskyWith(g *SymSparse, sym *SparseSymbolic, o KernelOptions) (*SparseCholesky, error) {
	n := sym.n
	c := &SparseCholesky{sym: sym, val: make([]float64, sym.colPtr[n])}
	if n == 0 {
		return c, nil
	}
	workers, blockSize, serial := resolveKernel(o)
	// Permute G's lower triangle into permuted-lower CSC lists (rows
	// within a column unsorted — the panel scatter does not care).
	aPtr := make([]int, n+1)
	for j := 0; j < n; j++ {
		pj := sym.iperm[j]
		for p := g.colPtr[j]; p < g.colPtr[j+1]; p++ {
			pr := sym.iperm[g.rowIdx[p]]
			if pr < pj {
				aPtr[pr+1]++
			} else {
				aPtr[pj+1]++
			}
		}
	}
	for j := 0; j < n; j++ {
		aPtr[j+1] += aPtr[j]
	}
	aRow := make([]int32, aPtr[n])
	aVal := make([]float64, aPtr[n])
	fill := make([]int, n)
	copy(fill, aPtr[:n])
	for j := 0; j < n; j++ {
		pj := sym.iperm[j]
		for p := g.colPtr[j]; p < g.colPtr[j+1]; p++ {
			pr := sym.iperm[g.rowIdx[p]]
			col, row := pj, pr
			if pr < pj {
				col, row = pr, pj
			}
			aRow[fill[col]] = row
			aVal[fill[col]] = g.val[p]
			fill[col]++
		}
	}
	// Supernode bookkeeping.
	snode := sym.snode
	nsup := len(snode) - 1
	snodeOf := make([]int32, n)
	maxPanel := 0
	for s := 0; s < nsup; s++ {
		c0, c1 := int(snode[s]), int(snode[s+1])
		w := c1 - c0
		nr := sym.colPtr[c0+1] - sym.colPtr[c0]
		if nr*w > maxPanel {
			maxPanel = nr * w
		}
		for j := c0; j < c1; j++ {
			snodeOf[j] = int32(s)
		}
	}
	head := make([]int32, nsup)
	dnext := make([]int32, nsup)
	dptr := make([]int, nsup)
	for s := range head {
		head[s] = -1
	}
	local := make([]int32, n)
	panel := make([]float64, maxPanel)
	colPtr, rowIdx := sym.colPtr, sym.rowIdx
	for s := 0; s < nsup; s++ {
		c0, c1 := int(snode[s]), int(snode[s+1])
		w := c1 - c0
		rr := rowIdx[colPtr[c0]:colPtr[c0+1]]
		nr := len(rr)
		for t, r := range rr {
			local[r] = int32(t)
		}
		pn := panel[:nr*w]
		for i := range pn {
			pn[i] = 0
		}
		// Scatter the permuted Gram columns of this supernode.
		for j := c0; j < c1; j++ {
			for p := aPtr[j]; p < aPtr[j+1]; p++ {
				pn[int(local[aRow[p]])*w+(j-c0)] += aVal[p]
			}
		}
		// Apply descendant supernode contributions. A descendant d sits in
		// s's list iff its next unconsumed pattern row falls inside
		// [c0,c1); its contribution is the outer product of the pattern
		// suffix starting at that row.
		for head[s] != -1 {
			d := head[s]
			head[s] = dnext[d]
			dc0 := int(snode[d])
			wd := int(snode[d+1]) - dc0
			rd := rowIdx[colPtr[dc0]:colPtr[dc0+1]]
			p0 := dptr[d]
			q := p0
			for q < len(rd) && rd[q] < int32(c1) {
				q++
			}
			for jc := 0; jc < wd; jc++ {
				// Column dc0+jc stores pattern suffix rd[jc:], so the value
				// of L[rd[t], dc0+jc] sits at val[colPtr[dc0+jc]+t-jc].
				base := colPtr[dc0+jc] - jc
				for a := p0; a < q; a++ {
					la := c.val[base+a]
					if la == 0 {
						continue
					}
					tcol := int(local[rd[a]])
					for b := a; b < len(rd); b++ {
						pn[int(local[rd[b]])*w+tcol] -= la * c.val[base+b]
					}
				}
			}
			dptr[d] = q
			if q < len(rd) {
				ns := snodeOf[rd[q]]
				dnext[d] = head[ns]
				head[ns] = d
			}
		}
		// Factor the w×w diagonal block, dispatching exactly like the
		// dense kernel: unblocked in place below 2×blockSize, PR-5 blocked
		// kernel above.
		if serial || w < 2*blockSize {
			if err := cholUnblockedStride(pn, w, c0); err != nil {
				return nil, err
			}
		} else {
			dblk := NewDense(w, w)
			for r := 0; r < w; r++ {
				copy(dblk.Row(r)[:r+1], pn[r*w:r*w+r+1])
			}
			dch, err := newCholeskyBlocked(dblk, blockSize, workers)
			if err != nil {
				return nil, fmt.Errorf("matrix: sparse factor supernode at column %d: %w", c0, err)
			}
			for r := 0; r < w; r++ {
				copy(pn[r*w:r*w+r+1], dch.l.Row(r)[:r+1])
			}
		}
		// Triangular panel solve for the sub-diagonal rows.
		for r := w; r < nr; r++ {
			prow := pn[r*w : r*w+w]
			for j := 0; j < w; j++ {
				ljRow := pn[j*w : j*w+w]
				sv := prow[j]
				for k := 0; k < j; k++ {
					sv -= prow[k] * ljRow[k]
				}
				prow[j] = sv / ljRow[j]
			}
		}
		// Scatter the panel back into the factor's CSC storage.
		for jc := 0; jc < w; jc++ {
			dst := colPtr[c0+jc]
			for t := jc; t < nr; t++ {
				c.val[dst] = pn[t*w+jc]
				dst++
			}
		}
		if w < nr {
			dptr[s] = w
			ns := snodeOf[rr[w]]
			dnext[s] = head[ns]
			head[ns] = int32(s)
		}
	}
	return c, nil
}

// cholUnblockedStride runs the serial reference Cholesky sweep in place
// on a w×w row-major block (the leading w columns of a panel whose row
// stride is also w). col0 labels errors with the global column.
func cholUnblockedStride(pn []float64, w, col0 int) error {
	for j := 0; j < w; j++ {
		pj := pn[j*w : j*w+w]
		diag := pj[j]
		for k := 0; k < j; k++ {
			diag -= pj[k] * pj[k]
		}
		if diag <= 0 || math.IsNaN(diag) {
			return fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, col0+j, diag)
		}
		d := math.Sqrt(diag)
		pj[j] = d
		for i := j + 1; i < w; i++ {
			pi := pn[i*w : i*w+w]
			sv := pi[j]
			for k := 0; k < j; k++ {
				sv -= pi[k] * pj[k]
			}
			pi[j] = sv / d
		}
	}
	return nil
}

// N reports the factored dimension.
func (c *SparseCholesky) N() int { return c.sym.n }

// Valid reports whether the factor is usable: false once a failed
// Update/Downdate has poisoned it.
func (c *SparseCholesky) Valid() bool { return !c.poisoned }

// FactorNNZ reports the stored entry count of the factor.
func (c *SparseCholesky) FactorNNZ() int { return len(c.val) }

// Symbolic returns the cached pattern analysis (shared, immutable).
func (c *SparseCholesky) Symbolic() *SparseSymbolic { return c.sym }

// Clone returns an independent copy of the numeric factor sharing the
// immutable symbolic analysis, so callers can derive an updated factor
// while the original keeps serving solves. A poisoned factor clones
// poisoned.
func (c *SparseCholesky) Clone() *SparseCholesky {
	v := make([]float64, len(c.val))
	copy(v, c.val)
	return &SparseCholesky{sym: c.sym, val: v, poisoned: c.poisoned}
}

// SolveInto solves G x = b into dst without allocating, using scratch
// (length n) for the permuted intermediate. dst may alias b; scratch
// must not alias either.
func (c *SparseCholesky) SolveInto(dst, b, scratch []float64) error {
	n := c.sym.n
	if len(b) != n {
		return fmt.Errorf("matrix: sparse cholesky solve dim %d vs %d", len(b), n)
	}
	if len(dst) != n || len(scratch) != n {
		return fmt.Errorf("matrix: sparse cholesky solve buffers %d/%d vs %d", len(dst), len(scratch), n)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	perm := c.sym.perm
	colPtr, rowIdx := c.sym.colPtr, c.sym.rowIdx
	for i := 0; i < n; i++ {
		scratch[i] = b[perm[i]]
	}
	// Forward: L y = P b, scattering each column's contribution.
	for j := 0; j < n; j++ {
		p := colPtr[j]
		xj := scratch[j] / c.val[p]
		scratch[j] = xj
		for t := p + 1; t < colPtr[j+1]; t++ {
			scratch[rowIdx[t]] -= c.val[t] * xj
		}
	}
	// Backward: Lᵀ x = y, gathering down each column.
	for j := n - 1; j >= 0; j-- {
		p := colPtr[j]
		sv := scratch[j]
		for t := p + 1; t < colPtr[j+1]; t++ {
			sv -= c.val[t] * scratch[rowIdx[t]]
		}
		scratch[j] = sv / c.val[p]
	}
	for i := 0; i < n; i++ {
		dst[perm[i]] = scratch[i]
	}
	return nil
}

// Update rewrites the factor of G into the factor of G + xxᵀ with
// Givens rotations confined to the elimination-tree closure of x's
// non-zero pattern — O(size of the affected columns) instead of O(n²).
// A structural precheck runs first: if the rotation would create fill
// outside the symbolic pattern, ErrSparseUpdateFill is returned with
// the factor untouched. A numeric failure mid-pass (non-positive pivot)
// poisons the factor like the dense path. x is not modified.
func (c *SparseCholesky) Update(x []float64) error { return c.rankOne(x, false) }

// Downdate rewrites the factor of G into the factor of G − xxᵀ with
// hyperbolic rotations, under the same structural precheck and
// poison-on-numeric-failure contract as Update. x is not modified.
func (c *SparseCholesky) Downdate(x []float64) error { return c.rankOne(x, true) }

func (c *SparseCholesky) rankOne(x []float64, down bool) error {
	sym := c.sym
	n := sym.n
	if len(x) != n {
		return fmt.Errorf("matrix: sparse cholesky rank-one dim %d vs %d", len(x), n)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	work := make([]float64, n)
	wp := make([]int32, 0, 64)
	inWp := make([]bool, n)
	for i, v := range x {
		if v != 0 {
			pi := sym.iperm[i]
			work[pi] = v
			inWp[pi] = true
			wp = append(wp, pi)
		}
	}
	if len(wp) == 0 {
		return nil
	}
	// Affected columns: the union of elimination-tree paths from every
	// seed to its root. All structurally reachable work indices stay
	// inside this set, because every column pattern consists of
	// elimination-tree ancestors.
	closure := make([]int32, 0, 64)
	seen := make([]bool, n)
	for _, k := range wp {
		for j := k; j != -1 && !seen[j]; j = sym.parent[j] {
			seen[j] = true
			closure = append(closure, j)
		}
	}
	sort.Slice(closure, func(a, b int) bool { return closure[a] < closure[b] })
	// Structural precheck (no mutation): walking the rotation forward,
	// the working vector at column k is non-zero only on wp; every such
	// row must be present in column k's stored pattern or the rotation
	// would need fill.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for _, k := range closure {
		if !inWp[k] {
			continue
		}
		for t := sym.colPtr[k]; t < sym.colPtr[k+1]; t++ {
			stamp[sym.rowIdx[t]] = k
		}
		for _, i := range wp {
			if i > k && stamp[i] != k {
				return fmt.Errorf("%w: column %d needs row %d", ErrSparseUpdateFill, k, i)
			}
		}
		for t := sym.colPtr[k] + 1; t < sym.colPtr[k+1]; t++ {
			if r := sym.rowIdx[t]; !inWp[r] {
				inWp[r] = true
				wp = append(wp, r)
			}
		}
	}
	// Numeric pass: identical arithmetic to the dense Update/Downdate on
	// the affected columns (columns with a zero working value are exact
	// rotation no-ops and are skipped).
	for _, k := range closure {
		wk := work[k]
		if wk == 0 {
			continue
		}
		p := sym.colPtr[k]
		lkk := c.val[p]
		var r float64
		if down {
			d := (lkk - wk) * (lkk + wk)
			if d <= 0 || math.IsNaN(d) {
				c.poisoned = true
				return fmt.Errorf("%w: downdate pivot %d = %g", ErrNotPositiveDefinite, k, d)
			}
			r = math.Sqrt(d)
		} else {
			r = math.Hypot(lkk, wk)
			if lkk <= 0 || r == 0 || math.IsNaN(r) {
				c.poisoned = true
				return fmt.Errorf("%w: update pivot %d = %g", ErrNotPositiveDefinite, k, lkk)
			}
		}
		cosv := r / lkk
		sinv := wk / lkk
		c.val[p] = r
		if down {
			for t := p + 1; t < sym.colPtr[k+1]; t++ {
				i := sym.rowIdx[t]
				lik := (c.val[t] - sinv*work[i]) / cosv
				work[i] = cosv*work[i] - sinv*lik
				c.val[t] = lik
			}
		} else {
			for t := p + 1; t < sym.colPtr[k+1]; t++ {
				i := sym.rowIdx[t]
				lik := (c.val[t] + sinv*work[i]) / cosv
				work[i] = cosv*work[i] - sinv*lik
				c.val[t] = lik
			}
		}
	}
	return nil
}
