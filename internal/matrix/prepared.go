package matrix

import (
	"errors"
	"fmt"
	"time"
)

// PreparedLS is a factor-once/solve-many least-squares engine for a
// fixed sparse H: the normal-equations matrix HᵀH is assembled and
// Cholesky-factored at prepare time (with the ridge fallback for
// linearly dependent columns baked in), so each subsequent solve costs
// only one sparse Hᵀy product and two triangular substitutions — no
// O(n³) work and, via SolveInto, no allocation. H only changes when the
// controller installs rules, so continuous monitors prepare once per
// rule generation and solve every detection period.
type PreparedLS struct {
	h     *CSR
	chol  *Cholesky
	ridge float64
	stats PrepareStats
}

// PrepareStats records where prepare time went, for the prepare-stage
// telemetry histograms. Both durations are zero for engines wrapped
// with NewPreparedLSFromFactor (no Gram or factorization ran).
type PrepareStats struct {
	// Gram is the HᵀH assembly time.
	Gram time.Duration
	// Factor is the Cholesky factorization time, including the ridge
	// retry when the plain factorization failed.
	Factor time.Duration
}

// PrepareLS assembles and factors the normal equations of h. When HᵀH
// is singular it applies the same ridge regularization as
// SolveNormalEquations (opts.Ridge, or a trace-scaled default) before
// refactoring, so prepared and one-shot solves agree exactly.
func PrepareLS(h *CSR, opts LeastSquaresOptions) (*PreparedLS, error) {
	t0 := time.Now()
	gram := h.Gram()
	tGram := time.Since(t0)
	t1 := time.Now()
	chol, err := NewCholesky(gram)
	if err == nil {
		return &PreparedLS{h: h, chol: chol, stats: PrepareStats{Gram: tGram, Factor: time.Since(t1)}}, nil
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		return nil, err
	}
	ridge := opts.Ridge
	if ridge == 0 {
		trace := 0.0
		for i := 0; i < gram.Rows(); i++ {
			trace += gram.At(i, i)
		}
		ridge = 1e-9 * (trace/float64(gram.Rows()) + 1)
	}
	for i := 0; i < gram.Rows(); i++ {
		gram.Add(i, i, ridge)
	}
	chol, err = NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("matrix: ridge-regularized normal equations: %w", err)
	}
	return &PreparedLS{h: h, chol: chol, ridge: ridge, stats: PrepareStats{Gram: tGram, Factor: time.Since(t1)}}, nil
}

// NewPreparedLSFromFactor wraps an externally maintained Cholesky
// factor of hᵀh (for example one produced by rank-one Update/Downdate
// from a previous generation's factor) as a prepared engine. The caller
// is responsible for chol actually factoring hᵀh (+ ridge·I); no check
// is performed beyond the dimension match.
func NewPreparedLSFromFactor(h *CSR, chol *Cholesky, ridge float64) (*PreparedLS, error) {
	if chol.N() != h.Cols() {
		return nil, fmt.Errorf("matrix: factor dim %d vs %d columns", chol.N(), h.Cols())
	}
	return &PreparedLS{h: h, chol: chol, ridge: ridge}, nil
}

// Factor exposes the underlying Cholesky factorization of HᵀH. Callers
// that need a modified engine must Clone it first; mutating the
// returned factor corrupts the prepared engine.
func (p *PreparedLS) Factor() *Cholesky { return p.chol }

// H exposes the prepared coefficient matrix.
func (p *PreparedLS) H() *CSR { return p.h }

// Rows reports the row count of the prepared H.
func (p *PreparedLS) Rows() int { return p.h.Rows() }

// Cols reports the column count of the prepared H (the solution
// length, and the required length of dst and workspace in SolveInto).
func (p *PreparedLS) Cols() int { return p.h.Cols() }

// Ridge reports the regularization applied at prepare time (0 when
// plain Cholesky succeeded).
func (p *PreparedLS) Ridge() float64 { return p.ridge }

// Stats reports where the prepare time of this engine went.
func (p *PreparedLS) Stats() PrepareStats { return p.stats }

// Solve computes the least-squares estimate x̂ for observed counters y,
// allocating the result.
func (p *PreparedLS) Solve(y []float64) ([]float64, error) {
	dst := make([]float64, p.Cols())
	if err := p.SolveInto(dst, y, make([]float64, p.Cols())); err != nil {
		return nil, err
	}
	return dst, nil
}

// SolveInto computes x̂ = (HᵀH)⁻¹Hᵀy into dst without allocating.
// workspace is scratch of length Cols() that must not alias dst or y.
func (p *PreparedLS) SolveInto(dst, y, workspace []float64) error {
	if len(y) != p.h.Rows() {
		return fmt.Errorf("matrix: prepared solve dims %dx%d vs %d", p.h.Rows(), p.h.Cols(), len(y))
	}
	if err := p.h.TMulVecInto(dst, y); err != nil {
		return err
	}
	return p.chol.SolveInto(dst, dst, workspace)
}

// SolveBatch computes x̂ for k observation vectors in one multi-RHS
// triangular sweep, returning the solutions as the columns of a
// Cols()×k matrix. Column r is bitwise identical to Solve(ys[r]) — the
// batch amortizes factor and L/Lᵀ memory traffic across the windows
// without changing any result (see Cholesky.SolveManyInto).
func (p *PreparedLS) SolveBatch(ys [][]float64) (*Dense, error) {
	n := p.Cols()
	k := len(ys)
	b := NewDense(n, k)
	tmp := make([]float64, n)
	for r, y := range ys {
		if err := p.h.TMulVecInto(tmp, y); err != nil {
			return nil, err
		}
		for i, v := range tmp {
			b.Set(i, r, v)
		}
	}
	x := NewDense(n, k)
	if err := p.chol.SolveManyInto(x, b, NewDense(n, k)); err != nil {
		return nil, err
	}
	return x, nil
}
