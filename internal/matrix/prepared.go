package matrix

import (
	"errors"
	"fmt"
	"time"
)

// PreparedLS is a factor-once/solve-many least-squares engine for a
// fixed sparse H: the normal-equations matrix HᵀH is assembled and
// Cholesky-factored at prepare time (with the ridge fallback for
// linearly dependent columns baked in), so each subsequent solve costs
// only one sparse Hᵀy product and two triangular substitutions — no
// O(n³) work and, via SolveInto, no allocation. H only changes when the
// controller installs rules, so continuous monitors prepare once per
// rule generation and solve every detection period.
//
// The factorization backend is selected per KernelOptions.Sparse: the
// default SparseAuto assembles the Gram sparsely for wide systems and
// keeps it sparse when its density is at or below the threshold,
// breaking the O(n²) dense-Gram memory wall; narrow or dense systems
// scatter to the dense kernels and behave exactly as before.
type PreparedLS struct {
	h     *CSR
	chol  *Cholesky       // dense backend (nil when sparse)
	sp    *SparseCholesky // sparse backend (nil when dense)
	ridge float64
	stats PrepareStats
}

// PrepareStats records where prepare time went, for the prepare-stage
// telemetry histograms. All durations are zero for engines wrapped
// with NewPreparedLSFromFactor (no Gram or factorization ran).
type PrepareStats struct {
	// Gram is the HᵀH assembly time (sparse or dense form).
	Gram time.Duration
	// Factor is the total factorization time, including the ridge retry
	// when the plain factorization failed. On the sparse path it equals
	// Ordering + Symbolic + Numeric.
	Factor time.Duration
	// Sparse-path stage split (zero on the dense path): fill-reducing
	// ordering, symbolic analysis, and numeric factorization.
	Ordering time.Duration
	Symbolic time.Duration
	Numeric  time.Duration
	// Sparse reports which backend was selected.
	Sparse bool
	// GramNNZ and FactorNNZ record the stored lower-triangle entry
	// counts of the sparse Gram and its factor (zero on the dense path);
	// their ratio is the fill-in.
	GramNNZ, FactorNNZ int
}

// UpdatableFactor is the rank-one-maintainable factor interface shared
// by the dense *Cholesky and the *SparseCholesky backends. The churn
// manager clones a prepared engine's factor through it and repairs the
// clone in place, without caring which backend prepared the engine.
type UpdatableFactor interface {
	N() int
	Valid() bool
	Update(x []float64) error
	Downdate(x []float64) error
	SolveInto(dst, b, scratch []float64) error
}

// PrepareLS assembles and factors the normal equations of h under the
// package kernel defaults. When HᵀH is singular it applies the same
// ridge regularization as SolveNormalEquations (opts.Ridge, or a
// trace-scaled default) before refactoring, so prepared and one-shot
// solves agree exactly.
func PrepareLS(h *CSR, opts LeastSquaresOptions) (*PreparedLS, error) {
	return PrepareLSOpts(h, opts, KernelOptions{})
}

// PrepareLSOpts prepares like PrepareLS with explicit kernel options.
func PrepareLSOpts(h *CSR, opts LeastSquaresOptions, ko KernelOptions) (*PreparedLS, error) {
	return prepareLS(h, opts, ko, nil)
}

// PrepareLSReusing prepares like PrepareLSOpts but, when prev is a
// sparse-backed engine whose Gram pattern exactly matches h's, reuses
// prev's cached ordering and symbolic analysis and runs only the
// numeric factorization. The churn manager uses it so value-only rule
// churn (and ridge retries) never repeat the pattern work.
func PrepareLSReusing(h *CSR, opts LeastSquaresOptions, ko KernelOptions, prev *PreparedLS) (*PreparedLS, error) {
	var sym *SparseSymbolic
	if prev != nil && prev.sp != nil {
		sym = prev.sp.sym
	}
	return prepareLS(h, opts, ko, sym)
}

func prepareLS(h *CSR, opts LeastSquaresOptions, ko KernelOptions, prevSym *SparseSymbolic) (*PreparedLS, error) {
	mode, minCols, density := resolveSparse(ko)
	n := h.Cols()
	if mode == SparseNever || (mode == SparseAuto && n < minCols) {
		return prepareDense(h, opts, ko, nil, 0)
	}
	t0 := time.Now()
	g := h.SymGram()
	tGram := time.Since(t0)
	if mode != SparseAlways && g.Density() > density {
		// Too dense for the sparse factor to pay off: scatter the already
		// assembled Gram (entry-for-entry equal to the serial dense
		// assembly) and run the dense path.
		return prepareDense(h, opts, ko, g, tGram)
	}
	return prepareSparse(h, opts, ko, g, tGram, prevSym)
}

// prepareDense is the dense backend: Gram (reusing a sparse assembly
// when one was already built for the density probe), blocked Cholesky,
// ridge retry.
func prepareDense(h *CSR, opts LeastSquaresOptions, ko KernelOptions, g *SymSparse, tGram time.Duration) (*PreparedLS, error) {
	var gram *Dense
	if g != nil {
		t0 := time.Now()
		gram = g.ToDense()
		tGram += time.Since(t0)
	} else {
		t0 := time.Now()
		gram = h.GramOpts(ko)
		tGram = time.Since(t0)
	}
	t1 := time.Now()
	chol, err := NewCholeskyOpts(gram, ko)
	if err == nil {
		return &PreparedLS{h: h, chol: chol, stats: PrepareStats{Gram: tGram, Factor: time.Since(t1)}}, nil
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		return nil, err
	}
	ridge := opts.Ridge
	if ridge == 0 {
		trace := 0.0
		for i := 0; i < gram.Rows(); i++ {
			trace += gram.At(i, i)
		}
		ridge = 1e-9 * (trace/float64(gram.Rows()) + 1)
	}
	for i := 0; i < gram.Rows(); i++ {
		gram.Add(i, i, ridge)
	}
	chol, err = NewCholeskyOpts(gram, ko)
	if err != nil {
		return nil, fmt.Errorf("matrix: ridge-regularized normal equations: %w", err)
	}
	return &PreparedLS{h: h, chol: chol, ridge: ridge, stats: PrepareStats{Gram: tGram, Factor: time.Since(t1)}}, nil
}

// prepareSparse is the sparse backend: AMD ordering + symbolic analysis
// (reused from prevSym when its Gram pattern matches), supernodal
// numeric factorization, ridge retry on the same analysis.
func prepareSparse(h *CSR, opts LeastSquaresOptions, ko KernelOptions, g *SymSparse, tGram time.Duration, prevSym *SparseSymbolic) (*PreparedLS, error) {
	var tOrd, tSym time.Duration
	sym := prevSym
	if sym == nil || !sym.Matches(g) {
		t0 := time.Now()
		perm := amdOrder(g.n, g.adjPtr, g.adj)
		tOrd = time.Since(t0)
		t1 := time.Now()
		sym = symbolicFromPerm(g, perm)
		tSym = time.Since(t1)
	}
	t2 := time.Now()
	sp, err := newSparseCholeskyWith(g, sym, ko)
	ridge := 0.0
	if err != nil {
		if !errors.Is(err, ErrNotPositiveDefinite) {
			return nil, err
		}
		ridge = opts.Ridge
		if ridge == 0 {
			ridge = 1e-9 * (g.Trace()/float64(g.n) + 1)
		}
		// The pattern always stores diagonal slots, so the ridge retry
		// reuses the same symbolic analysis.
		g.AddRidge(ridge)
		sp, err = newSparseCholeskyWith(g, sym, ko)
		if err != nil {
			return nil, fmt.Errorf("matrix: ridge-regularized normal equations: %w", err)
		}
	}
	tNum := time.Since(t2)
	return &PreparedLS{h: h, sp: sp, ridge: ridge, stats: PrepareStats{
		Gram:      tGram,
		Factor:    tOrd + tSym + tNum,
		Ordering:  tOrd,
		Symbolic:  tSym,
		Numeric:   tNum,
		Sparse:    true,
		GramNNZ:   g.NNZLower(),
		FactorNNZ: sp.FactorNNZ(),
	}}, nil
}

// NewPreparedLSFromFactor wraps an externally maintained dense Cholesky
// factor of hᵀh (for example one produced by rank-one Update/Downdate
// from a previous generation's factor) as a prepared engine. The caller
// is responsible for chol actually factoring hᵀh (+ ridge·I); beyond
// the dimension match the only check is that the factor has not been
// poisoned by a failed rank-one pass.
func NewPreparedLSFromFactor(h *CSR, chol *Cholesky, ridge float64) (*PreparedLS, error) {
	return NewPreparedLSFromUpdatable(h, chol, ridge)
}

// NewPreparedLSFromUpdatable wraps a rank-one-maintained factor of
// either backend as a prepared engine. Poisoned factors (a failed
// Update/Downdate) are rejected with ErrFactorPoisoned so a broken
// factor can never be promoted into a serving engine.
func NewPreparedLSFromUpdatable(h *CSR, f UpdatableFactor, ridge float64) (*PreparedLS, error) {
	if f == nil {
		return nil, fmt.Errorf("matrix: nil factor")
	}
	if f.N() != h.Cols() {
		return nil, fmt.Errorf("matrix: factor dim %d vs %d columns", f.N(), h.Cols())
	}
	if !f.Valid() {
		return nil, ErrFactorPoisoned
	}
	p := &PreparedLS{h: h, ridge: ridge}
	switch t := f.(type) {
	case *Cholesky:
		p.chol = t
	case *SparseCholesky:
		p.sp = t
	default:
		return nil, fmt.Errorf("matrix: unknown factor type %T", f)
	}
	return p, nil
}

// Factor exposes the underlying dense Cholesky factorization of HᵀH,
// or nil when the engine is sparse-backed; prefer CloneFactor for
// backend-agnostic rank-one maintenance. Callers that need a modified
// engine must Clone it first; mutating the returned factor corrupts the
// prepared engine.
func (p *PreparedLS) Factor() *Cholesky { return p.chol }

// SparseBacked reports whether the sparse direct backend prepared this
// engine.
func (p *PreparedLS) SparseBacked() bool { return p.sp != nil }

// CloneFactor returns an independently updatable copy of the prepared
// factor (dense or sparse), or nil for engines without one. The clone
// shares no mutable state with the serving engine.
func (p *PreparedLS) CloneFactor() UpdatableFactor {
	switch {
	case p.sp != nil:
		return p.sp.Clone()
	case p.chol != nil:
		return p.chol.Clone()
	default:
		return nil
	}
}

// H exposes the prepared coefficient matrix.
func (p *PreparedLS) H() *CSR { return p.h }

// Rows reports the row count of the prepared H.
func (p *PreparedLS) Rows() int { return p.h.Rows() }

// Cols reports the column count of the prepared H (the solution
// length, and the required length of dst and workspace in SolveInto).
func (p *PreparedLS) Cols() int { return p.h.Cols() }

// Ridge reports the regularization applied at prepare time (0 when
// plain Cholesky succeeded).
func (p *PreparedLS) Ridge() float64 { return p.ridge }

// Stats reports where the prepare time of this engine went.
func (p *PreparedLS) Stats() PrepareStats { return p.stats }

// Solve computes the least-squares estimate x̂ for observed counters y,
// allocating the result.
func (p *PreparedLS) Solve(y []float64) ([]float64, error) {
	dst := make([]float64, p.Cols())
	if err := p.SolveInto(dst, y, make([]float64, p.Cols())); err != nil {
		return nil, err
	}
	return dst, nil
}

// SolveInto computes x̂ = (HᵀH)⁻¹Hᵀy into dst without allocating.
// workspace is scratch of length Cols() that must not alias dst or y.
func (p *PreparedLS) SolveInto(dst, y, workspace []float64) error {
	if len(y) != p.h.Rows() {
		return fmt.Errorf("matrix: prepared solve dims %dx%d vs %d", p.h.Rows(), p.h.Cols(), len(y))
	}
	if err := p.h.TMulVecInto(dst, y); err != nil {
		return err
	}
	if p.sp != nil {
		return p.sp.SolveInto(dst, dst, workspace)
	}
	return p.chol.SolveInto(dst, dst, workspace)
}

// SolveBatch computes x̂ for k observation vectors in one multi-RHS
// triangular sweep, returning the solutions as the columns of a
// Cols()×k matrix. Column r is bitwise identical to Solve(ys[r]) — the
// dense batch amortizes factor memory traffic across the windows
// without changing any result (see Cholesky.SolveManyInto); the sparse
// backend loops per-window SolveInto, which is already the same
// arithmetic.
func (p *PreparedLS) SolveBatch(ys [][]float64) (*Dense, error) {
	n := p.Cols()
	k := len(ys)
	if p.sp != nil {
		x := NewDense(n, k)
		tmp := make([]float64, n)
		scratch := make([]float64, n)
		for r, y := range ys {
			if err := p.h.TMulVecInto(tmp, y); err != nil {
				return nil, err
			}
			if err := p.sp.SolveInto(tmp, tmp, scratch); err != nil {
				return nil, err
			}
			for i, v := range tmp {
				x.Set(i, r, v)
			}
		}
		return x, nil
	}
	b := NewDense(n, k)
	tmp := make([]float64, n)
	for r, y := range ys {
		if err := p.h.TMulVecInto(tmp, y); err != nil {
			return nil, err
		}
		for i, v := range tmp {
			b.Set(i, r, v)
		}
	}
	x := NewDense(n, k)
	if err := p.chol.SolveManyInto(x, b, NewDense(n, k)); err != nil {
		return nil, err
	}
	return x, nil
}
