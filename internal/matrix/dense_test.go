package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatalf("Set/Add gave %v", m.At(0, 0))
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty FromRows: %v %v", empty, err)
	}
}

func TestDenseMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(y, []float64{3, 7}, 0) {
		t.Fatalf("MulVec = %v", y)
	}
	yt, err := m.TMulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(yt, []float64{4, 6}, 0) {
		t.Fatalf("TMulVec = %v", yt)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if _, err := m.TMulVec([]float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 0}, {0, 1, 1}})
	b, _ := FromRows([][]float64{{1, 0}, {2, 1}, {0, 3}})
	ab, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{5, 2}, {2, 4}})
	if !ab.EqualApprox(want, 0) {
		t.Fatalf("Mul = \n%v", ab)
	}
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(1, 0) != 2 {
		t.Fatalf("Transpose wrong: \n%v", at)
	}
	if _, err := Mul(a, a); err == nil {
		t.Fatal("incompatible Mul must error")
	}
}

func TestDenseGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewDense(6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(rng.Intn(5)))
		}
	}
	g := a.Gram()
	explicit, err := Mul(a.Transpose(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !g.EqualApprox(explicit, 1e-12) {
		t.Fatalf("Gram mismatch\n%v\nvs\n%v", g, explicit)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
	d, err := AbsDiff([]float64{1, 5}, []float64{4, 2})
	if err != nil || !VecEqualApprox(d, []float64{3, 3}, 0) {
		t.Fatalf("AbsDiff = %v err=%v", d, err)
	}
	if _, err := AbsDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if VecEqualApprox([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("length mismatch must be unequal")
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		return m.Transpose().Transpose().EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulVecLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		m := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		x := make([]float64, cols)
		y := make([]float64, cols)
		sum := make([]float64, cols)
		for j := range x {
			x[j], y[j] = r.NormFloat64(), r.NormFloat64()
			sum[j] = x[j] + y[j]
		}
		mx, _ := m.MulVec(x)
		my, _ := m.MulVec(y)
		msum, _ := m.MulVec(sum)
		for i := range msum {
			if math.Abs(msum[i]-mx[i]-my[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
