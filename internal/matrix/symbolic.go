package matrix

// Symbolic factorization for the sparse Cholesky path. Given the Gram
// pattern and a fill-reducing permutation, this computes — once — the
// elimination tree, the exact non-zero pattern of the factor L of
// P·G·Pᵀ, and a fundamental-supernode partition. The analysis depends
// only on the pattern, so it is cached inside SparseCholesky and reused
// across windows, ridge retries, and churn refactorizations whose Gram
// pattern is unchanged.

// SparseSymbolic is the cached pattern analysis of a sparse Cholesky
// factorization. All indices are in permuted coordinates unless noted.
type SparseSymbolic struct {
	n      int
	perm   []int32 // perm[k] = original index eliminated at step k
	iperm  []int32 // iperm[original] = permuted position
	parent []int32 // elimination tree (−1 at roots)
	colPtr []int   // L pattern: column j at rowIdx[colPtr[j]:colPtr[j+1]]
	rowIdx []int32 // rows ≥ j ascending, diagonal first
	snode  []int32 // supernode start columns, ascending, with trailing n
	// The (unpermuted) Gram lower pattern this analysis was computed
	// for, kept so a later epoch can cheaply test reusability.
	gramPtr []int
	gramRow []int32
}

// analyzeSparse orders the Gram graph with amdOrder and runs the
// symbolic factorization. g is retained by reference (pattern slices
// only) — callers must not mutate its pattern afterwards.
func analyzeSparse(g *SymSparse) *SparseSymbolic {
	perm := amdOrder(g.n, g.adjPtr, g.adj)
	return symbolicFromPerm(g, perm)
}

// symbolicFromPerm computes the symbolic factorization of P·G·Pᵀ for an
// explicit permutation (exposed separately for ordering experiments and
// tests).
func symbolicFromPerm(g *SymSparse, perm []int32) *SparseSymbolic {
	n := g.n
	s := &SparseSymbolic{
		n:       n,
		perm:    perm,
		iperm:   make([]int32, n),
		parent:  make([]int32, n),
		colPtr:  make([]int, n+1),
		gramPtr: g.colPtr,
		gramRow: g.rowIdx,
	}
	for k, p := range perm {
		s.iperm[p] = int32(k)
	}
	if n == 0 {
		s.snode = []int32{}
		return s
	}
	// Permuted strict-lower adjacency by row: for each permuted node i,
	// the permuted neighbors j < i. Built from the full adjacency so no
	// sort is needed (ereach marks instead of merging).
	lowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		pi := s.iperm[i]
		for p := g.adjPtr[i]; p < g.adjPtr[i+1]; p++ {
			if s.iperm[g.adj[p]] < pi {
				lowPtr[pi+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		lowPtr[i+1] += lowPtr[i]
	}
	lowAdj := make([]int32, lowPtr[n])
	fill := make([]int, n)
	copy(fill, lowPtr[:n])
	for i := 0; i < n; i++ {
		pi := s.iperm[i]
		for p := g.adjPtr[i]; p < g.adjPtr[i+1]; p++ {
			if pj := s.iperm[g.adj[p]]; pj < pi {
				lowAdj[fill[pi]] = pj
				fill[pi]++
			}
		}
	}
	// Elimination tree with ancestor path compression.
	anc := make([]int32, n)
	for i := range anc {
		s.parent[i] = -1
		anc[i] = -1
	}
	for i := int32(0); int(i) < n; i++ {
		for p := lowPtr[i]; p < lowPtr[i+1]; p++ {
			for r := lowAdj[p]; r != -1 && r != i; {
				nxt := anc[r]
				anc[r] = i
				if nxt == -1 {
					s.parent[r] = i
				}
				r = nxt
			}
		}
	}
	// Column counts via row subtrees (ereach): row i of L is non-zero at
	// exactly the columns on the elimination-tree paths from each strict
	// lower Gram neighbor j up to (but excluding) i.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	counts := make([]int, n) // strictly-below-diagonal count per column
	ereach := func(i int32, visit func(k int32)) {
		for p := lowPtr[i]; p < lowPtr[i+1]; p++ {
			for k := lowAdj[p]; k < i && stamp[k] != i; k = s.parent[k] {
				stamp[k] = i
				visit(k)
			}
		}
	}
	for i := int32(0); int(i) < n; i++ {
		ereach(i, func(k int32) { counts[k]++ })
	}
	for j := 0; j < n; j++ {
		s.colPtr[j+1] = s.colPtr[j] + 1 + counts[j] // +1 for the diagonal
	}
	s.rowIdx = make([]int32, s.colPtr[n])
	for i := range fill {
		fill[i] = s.colPtr[i]
	}
	for j := int32(0); int(j) < n; j++ {
		s.rowIdx[fill[j]] = j // diagonal first
		fill[j]++
	}
	for i := range stamp {
		stamp[i] = -1
	}
	// Rows visit columns in ascending i, so each column's row list comes
	// out ascending with the diagonal already in front.
	for i := int32(0); int(i) < n; i++ {
		ereach(i, func(k int32) {
			s.rowIdx[fill[k]] = i
			fill[k]++
		})
	}
	// Fundamental supernodes: columns j and j+1 merge when j+1 is j's
	// etree parent and pattern(j) = {j} ∪ pattern(j+1) — detected by the
	// standard count test.
	s.snode = append(s.snode, 0)
	for j := 1; j < n; j++ {
		width := s.colPtr[j] - s.colPtr[j-1]
		if !(s.parent[j-1] == int32(j) && width == s.colPtr[j+1]-s.colPtr[j]+1) {
			s.snode = append(s.snode, int32(j))
		}
	}
	s.snode = append(s.snode, int32(n))
	return s
}

// FactorNNZ reports the stored entry count of the factor pattern.
func (s *SparseSymbolic) FactorNNZ() int { return len(s.rowIdx) }

// NumSupernodes reports the supernode count.
func (s *SparseSymbolic) NumSupernodes() int {
	if len(s.snode) == 0 {
		return 0
	}
	return len(s.snode) - 1
}

// Matches reports whether this analysis was computed for exactly the
// Gram pattern of g, making it reusable for a numeric refactorization.
func (s *SparseSymbolic) Matches(g *SymSparse) bool {
	if s.n != g.n || len(s.gramRow) != len(g.rowIdx) {
		return false
	}
	for j := 0; j <= s.n; j++ {
		if s.gramPtr[j] != g.colPtr[j] {
			return false
		}
	}
	for p, r := range s.gramRow {
		if g.rowIdx[p] != r {
			return false
		}
	}
	return true
}
