package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSparseH builds a random rows×cols 0/1 CSR with the given
// per-row fill probability, padded with one identity row per column so
// the Gram is positive definite.
func randomSparseH(rng *rand.Rand, rows, cols int, p float64) *CSR {
	var tr []Triplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < p {
				tr = append(tr, Triplet{Row: i, Col: j, Val: 1})
			}
		}
	}
	for j := 0; j < cols; j++ {
		tr = append(tr, Triplet{Row: rows + j, Col: j, Val: 1})
	}
	h, err := NewCSR(rows+cols, cols, tr)
	if err != nil {
		panic(err)
	}
	return h
}

func TestSymGramMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := 5 + rng.Intn(40)
		cols := 3 + rng.Intn(30)
		h := randomSparseH(rng, rows, cols, 0.05+0.3*rng.Float64())
		g := h.SymGram()
		if err := g.symCheck(); err != nil {
			t.Fatal(err)
		}
		want := h.GramSerial()
		got := g.ToDense()
		if !got.EqualApprox(want, 0) {
			t.Fatalf("trial %d: sparse Gram != dense Gram", trial)
		}
	}
}

func TestAMDOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := randomSparseH(rng, 30, 4+rng.Intn(40), 0.2)
		g := h.SymGram()
		perm := amdOrder(g.n, g.adjPtr, g.adj)
		if len(perm) != g.n {
			t.Fatalf("perm length %d vs %d", len(perm), g.n)
		}
		seen := make([]bool, g.n)
		for _, p := range perm {
			if p < 0 || int(p) >= g.n || seen[p] {
				t.Fatalf("invalid permutation %v", perm)
			}
			seen[p] = true
		}
	}
}

// TestAMDReducesArrowFill checks the heuristic actually helps on the
// classic worst case for the natural order: an arrow matrix pointing
// the wrong way (dense first row/column) fills completely under the
// identity order but stays O(n) when the hub is eliminated last.
func TestAMDReducesArrowFill(t *testing.T) {
	n := 40
	var tr []Triplet
	for j := 0; j < n; j++ {
		tr = append(tr, Triplet{Row: j, Col: j, Val: 4})
		if j > 0 {
			tr = append(tr, Triplet{Row: j, Col: 0, Val: 1}) // hub column 0
		}
	}
	h, err := NewCSR(n, n, tr)
	if err != nil {
		t.Fatal(err)
	}
	g := h.SymGram()
	natural := make([]int32, g.n)
	for i := range natural {
		natural[i] = int32(i)
	}
	symNat := symbolicFromPerm(g, natural)
	symAMD := analyzeSparse(g)
	if symAMD.FactorNNZ() >= symNat.FactorNNZ() {
		t.Fatalf("AMD fill %d not below natural fill %d", symAMD.FactorNNZ(), symNat.FactorNNZ())
	}
	// Natural order on the arrow fills the whole triangle.
	if symNat.FactorNNZ() != n*(n+1)/2 {
		t.Fatalf("natural arrow fill = %d, want %d", symNat.FactorNNZ(), n*(n+1)/2)
	}
	// Hub-last keeps it at the input pattern size.
	if symAMD.FactorNNZ() != 2*n-1 {
		t.Fatalf("AMD arrow fill = %d, want %d", symAMD.FactorNNZ(), 2*n-1)
	}
}

func TestSparseCholeskySolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		rows := 10 + rng.Intn(60)
		cols := 5 + rng.Intn(50)
		h := randomSparseH(rng, rows, cols, 0.02+0.25*rng.Float64())
		g := h.SymGram()
		sp, err := NewSparseCholesky(g, KernelOptions{})
		if err != nil {
			t.Fatalf("trial %d: sparse factor: %v", trial, err)
		}
		dch, err := NewCholesky(h.GramSerial())
		if err != nil {
			t.Fatalf("trial %d: dense factor: %v", trial, err)
		}
		b := make([]float64, cols)
		for i := range b {
			b[i] = rng.NormFloat64() * 100
		}
		xs := make([]float64, cols)
		xd := make([]float64, cols)
		scratch := make([]float64, cols)
		if err := sp.SolveInto(xs, b, scratch); err != nil {
			t.Fatal(err)
		}
		if err := dch.SolveInto(xd, b, scratch); err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(xs, xd, 1e-9) {
			t.Fatalf("trial %d: sparse vs dense solve diverge", trial)
		}
	}
}

// TestSparseCholeskyWideSupernodes drives the blocked dense-panel path
// by building an H whose Gram holds a clique wider than 2×BlockSize.
func TestSparseCholeskyWideSupernodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cols := 220
	var tr []Triplet
	// One dense-ish row coupling a 150-column clique.
	for j := 0; j < 150; j++ {
		tr = append(tr, Triplet{Row: 0, Col: j, Val: 1})
	}
	row := 1
	for j := 0; j < cols; j++ {
		tr = append(tr, Triplet{Row: row, Col: j, Val: 1})
		if j+1 < cols {
			tr = append(tr, Triplet{Row: row, Col: j + 1, Val: 1})
		}
		row++
	}
	for j := 0; j < cols; j++ {
		tr = append(tr, Triplet{Row: row, Col: j, Val: 1})
		row++
	}
	h, err := NewCSR(row, cols, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, ko := range []KernelOptions{{}, {BlockSize: 32}, {Serial: true}} {
		sp, err := NewSparseCholesky(h.SymGram(), ko)
		if err != nil {
			t.Fatalf("opts %+v: %v", ko, err)
		}
		dch, err := NewCholesky(h.GramSerial())
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, cols)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xs, xd := make([]float64, cols), make([]float64, cols)
		scratch := make([]float64, cols)
		if err := sp.SolveInto(xs, b, scratch); err != nil {
			t.Fatal(err)
		}
		if err := dch.SolveInto(xd, b, scratch); err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(xs, xd, 1e-8) {
			t.Fatalf("opts %+v: sparse vs dense solve diverge", ko)
		}
	}
}

func TestSparseSymbolicReuseAcrossRidge(t *testing.T) {
	// A rank-deficient H (each column pair identical, hit by exactly one
	// row, so the 2×2 Gram blocks are exactly singular) forces the ridge
	// retry; the retry must succeed reusing the same analysis because
	// diagonal slots are always stored.
	var tr []Triplet
	for i := 0; i < 300; i++ {
		tr = append(tr, Triplet{Row: i, Col: i, Val: 1})
		tr = append(tr, Triplet{Row: i, Col: 300 + i, Val: 1})
	}
	h, err := NewCSR(300, 600, tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PrepareLSOpts(h, LeastSquaresOptions{}, KernelOptions{Sparse: SparseAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !p.SparseBacked() || p.Ridge() == 0 {
		t.Fatalf("want sparse-backed ridge engine, got sparse=%v ridge=%g", p.SparseBacked(), p.Ridge())
	}
}

func TestSparseUpdateDowndateMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		cols := 10 + rng.Intn(40)
		h := randomSparseH(rng, 3*cols, cols, 0.1)
		g := h.SymGram()
		sp, err := NewSparseCholesky(g, KernelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dch, err := NewCholesky(h.GramSerial())
		if err != nil {
			t.Fatal(err)
		}
		// Update with a row drawn from H itself: its pattern is a subset
		// of an existing Gram clique, so no fill is needed.
		ri := rng.Intn(h.Rows())
		x := make([]float64, cols)
		h.RowEntries(ri, func(c int, v float64) { x[c] = v })
		if err := sp.Update(x); err != nil {
			t.Fatalf("trial %d: sparse update: %v", trial, err)
		}
		if err := dch.Update(x); err != nil {
			t.Fatal(err)
		}
		b := make([]float64, cols)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		xs, xd := make([]float64, cols), make([]float64, cols)
		scratch := make([]float64, cols)
		if err := sp.SolveInto(xs, b, scratch); err != nil {
			t.Fatal(err)
		}
		if err := dch.SolveInto(xd, b, scratch); err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(xs, xd, 1e-8) {
			t.Fatalf("trial %d: post-update solves diverge", trial)
		}
		// Downdating the same row must return to the original factor.
		if err := sp.Downdate(x); err != nil {
			t.Fatalf("trial %d: sparse downdate: %v", trial, err)
		}
		fresh, err := NewSparseCholesky(h.SymGram(), KernelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.SolveInto(xd, b, scratch); err != nil {
			t.Fatal(err)
		}
		if err := sp.SolveInto(xs, b, scratch); err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(xs, xd, 1e-8) {
			t.Fatalf("trial %d: update+downdate did not round-trip", trial)
		}
	}
}

func TestSparseUpdateFillRejectedWithoutMutation(t *testing.T) {
	// Two disconnected 2-column cliques: an update coupling columns from
	// both needs fill outside the factor pattern and must be rejected
	// with the factor untouched.
	var tr []Triplet
	for j := 0; j < 4; j++ {
		tr = append(tr, Triplet{Row: j, Col: j, Val: 2})
	}
	tr = append(tr, Triplet{Row: 4, Col: 0, Val: 1}, Triplet{Row: 4, Col: 1, Val: 1})
	tr = append(tr, Triplet{Row: 5, Col: 2, Val: 1}, Triplet{Row: 5, Col: 3, Val: 1})
	h, err := NewCSR(6, 4, tr)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseCholesky(h.SymGram(), KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, len(sp.val))
	copy(before, sp.val)
	err = sp.Update([]float64{1, 0, 1, 0}) // couples the two cliques
	if !errors.Is(err, ErrSparseUpdateFill) {
		t.Fatalf("want ErrSparseUpdateFill, got %v", err)
	}
	for i, v := range sp.val {
		if v != before[i] {
			t.Fatalf("factor mutated at %d despite fill rejection", i)
		}
	}
	if !sp.Valid() {
		t.Fatal("fill rejection must not poison the factor")
	}
	// The factor still solves.
	b := []float64{1, 2, 3, 4}
	x := make([]float64, 4)
	if err := sp.SolveInto(x, b, make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDowndatePoisonOnFailure(t *testing.T) {
	var tr []Triplet
	tr = append(tr,
		Triplet{Row: 0, Col: 0, Val: 2},
		Triplet{Row: 1, Col: 1, Val: 0.1},
		Triplet{Row: 2, Col: 0, Val: 1},
		Triplet{Row: 2, Col: 1, Val: 1},
	)
	h, err := NewCSR(3, 2, tr)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseCholesky(h.SymGram(), KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Removing more weight than the second direction holds must fail…
	err = sp.Downdate([]float64{0, 1.5})
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	// …and poison the factor: solves and further maintenance error.
	if sp.Valid() {
		t.Fatal("factor still valid after failed downdate")
	}
	x := make([]float64, 2)
	if err := sp.SolveInto(x, []float64{1, 1}, make([]float64, 2)); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from solve, got %v", err)
	}
	if err := sp.Update([]float64{1, 0}); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from update, got %v", err)
	}
}

func TestPreparedLSSparseVsDenseAcrossDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, p := range []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5} {
		cols := 80 + rng.Intn(60)
		h := randomSparseH(rng, 2*cols, cols, p)
		dense, err := PrepareLSOpts(h, LeastSquaresOptions{}, KernelOptions{Sparse: SparseNever})
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := PrepareLSOpts(h, LeastSquaresOptions{}, KernelOptions{Sparse: SparseAlways})
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.SparseBacked() || dense.SparseBacked() {
			t.Fatalf("density %g: backend selection wrong", p)
		}
		y := make([]float64, h.Rows())
		for i := range y {
			y[i] = math.Abs(rng.NormFloat64()) * 1000
		}
		xd, err := dense.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := sparse.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		// Compare residual norms relative to ‖y‖ — the equivalence gate
		// the experiment enforces at 1e-12.
		rd := residualNorm(t, h, xd, y)
		rs := residualNorm(t, h, xs, y)
		yn := Norm2(y)
		if delta := math.Abs(rd-rs) / math.Max(1, yn); delta > 1e-12 {
			t.Fatalf("density %g: residual delta %g > 1e-12", p, delta)
		}
	}
}

func residualNorm(t *testing.T, h *CSR, x, y []float64) float64 {
	t.Helper()
	hx, err := h.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := AbsDiff(hx, y)
	if err != nil {
		t.Fatal(err)
	}
	return Norm2(d)
}

func TestPreparedLSAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// Wide and sparse: auto must pick the sparse backend.
	hs := randomSparseH(rng, 1200, 600, 0.004)
	ps, err := PrepareLSOpts(hs, LeastSquaresOptions{}, KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.SparseBacked() {
		t.Fatalf("auto did not pick sparse for density %g", hs.SymGram().Density())
	}
	// Narrow: auto must stay dense regardless of density.
	hn := randomSparseH(rng, 100, 50, 0.01)
	pn, err := PrepareLSOpts(hn, LeastSquaresOptions{}, KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pn.SparseBacked() {
		t.Fatal("auto picked sparse below SparseMinCols")
	}
	// Wide but dense: auto must scatter to the dense kernels.
	hd := randomSparseH(rng, 1200, 600, 0.5)
	pd, err := PrepareLSOpts(hd, LeastSquaresOptions{}, KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pd.SparseBacked() {
		t.Fatal("auto picked sparse for a dense Gram")
	}
}

func TestSolveBatchSparseMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := randomSparseH(rng, 300, 150, 0.03)
	p, err := PrepareLSOpts(h, LeastSquaresOptions{}, KernelOptions{Sparse: SparseAlways})
	if err != nil {
		t.Fatal(err)
	}
	ys := make([][]float64, 5)
	for r := range ys {
		ys[r] = make([]float64, h.Rows())
		for i := range ys[r] {
			ys[r][i] = rng.NormFloat64()
		}
	}
	batch, err := p.SolveBatch(ys)
	if err != nil {
		t.Fatal(err)
	}
	for r, y := range ys {
		x, err := p.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range x {
			if batch.At(i, r) != v {
				t.Fatalf("batch column %d differs from loop at %d", r, i)
			}
		}
	}
}
