package matrix

import (
	"math/rand"
	"testing"
)

// fcmShapedCSR builds a random sparse 0/1 matrix with at least one entry
// per row and per column, FCM-shaped (tall, full column rank with high
// probability).
func fcmShapedCSR(t *testing.T, rng *rand.Rand, rows, cols int) *CSR {
	t.Helper()
	var entries []Triplet
	for i := 0; i < rows; i++ {
		entries = append(entries, Triplet{Row: i, Col: rng.Intn(cols), Val: 1})
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.2 {
				entries = append(entries, Triplet{Row: i, Col: j, Val: 1})
			}
		}
	}
	for j := 0; j < cols; j++ {
		entries = append(entries, Triplet{Row: rng.Intn(rows), Col: j, Val: 1})
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPreparedLSMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows := 8 + rng.Intn(24)
		cols := 3 + rng.Intn(rows-2)
		h := fcmShapedCSR(t, rng, rows, cols)
		y := make([]float64, rows)
		for i := range y {
			y[i] = rng.NormFloat64() * 100
		}
		want, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := PrepareLS(h, LeastSquaresOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(got, want, 1e-12) {
			t.Fatalf("trial %d: prepared %v != one-shot %v", trial, got, want)
		}
		// A second solve against different counters reuses the factor.
		for i := range y {
			y[i] = rng.NormFloat64() * 100
		}
		want2, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got2, err := p.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqualApprox(got2, want2, 1e-12) {
			t.Fatalf("trial %d: second prepared solve diverged", trial)
		}
	}
}

func TestPreparedLSRidgeFallback(t *testing.T) {
	// Duplicate columns make HᵀH singular; prepare must bake in the
	// ridge and still solve.
	h, err := NewCSR(3, 2, []Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PrepareLS(h, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ridge() == 0 {
		t.Fatal("singular system must record an applied ridge")
	}
	y := []float64{2, 2, 2}
	got, err := p.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveNormalEquations(h, y, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(got, want, 1e-9) {
		t.Fatalf("ridge solve %v != one-shot %v", got, want)
	}
}

func TestPreparedLSSolveIntoAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := fcmShapedCSR(t, rng, 40, 12)
	y := make([]float64, 40)
	for i := range y {
		y[i] = rng.Float64() * 1000
	}
	p, err := PrepareLS(h, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, p.Cols())
	ws := make([]float64, p.Cols())
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.SolveInto(dst, y, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocates %v times per run, want 0", allocs)
	}
}

func TestPreparedLSValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := fcmShapedCSR(t, rng, 10, 4)
	p, err := PrepareLS(h, LeastSquaresOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SolveInto(make([]float64, 4), make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatal("short y must error")
	}
	if err := p.SolveInto(make([]float64, 2), make([]float64, 10), make([]float64, 4)); err == nil {
		t.Fatal("short dst must error")
	}
	if p.Rows() != 10 || p.Cols() != 4 {
		t.Fatalf("dims %dx%d", p.Rows(), p.Cols())
	}
}

func TestCSRMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := fcmShapedCSR(t, rng, 15, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := h.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 15)
	// Pre-poison dst to verify it is fully overwritten.
	for i := range dst {
		dst[i] = 1e300
	}
	if err := h.MulVecInto(dst, x); err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(dst, want, 0) {
		t.Fatalf("MulVecInto %v != MulVec %v", dst, want)
	}

	yv := make([]float64, 15)
	for i := range yv {
		yv[i] = rng.NormFloat64()
	}
	wantT, err := h.TMulVec(yv)
	if err != nil {
		t.Fatal(err)
	}
	dstT := make([]float64, 6)
	for i := range dstT {
		dstT[i] = -7
	}
	if err := h.TMulVecInto(dstT, yv); err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(dstT, wantT, 0) {
		t.Fatalf("TMulVecInto %v != TMulVec %v", dstT, wantT)
	}

	if err := h.MulVecInto(make([]float64, 3), x); err == nil {
		t.Fatal("short dst must error")
	}
	if err := h.TMulVecInto(make([]float64, 3), yv); err == nil {
		t.Fatal("short dst must error")
	}
}
