package matrix

import (
	"fmt"
	"math"
)

// Rank-one maintenance of a Cholesky factorization. When a single row r
// is appended to (or deleted from) H, the normal-equations matrix moves
// by ±rᵀr — a symmetric rank-one perturbation — and the factor of the
// new Gram can be obtained in O(n²) from the old one instead of the
// O(n³) refactorization. The churn subsystem uses Update/Downdate for
// small per-slice rule deltas and for masking epoch-straddling rows out
// of a prepared engine without rebuilding it.
//
// Failure model: both passes rotate columns left to right, so a bad
// pivot discovered at column k leaves columns 0..k−1 already rewritten.
// Rather than attempting a rollback, a failed pass marks the factor
// poisoned; SolveInto and any further Update/Downdate then return
// ErrFactorPoisoned. Callers (the churn manager) clone before updating
// and throw the clone away on failure, so poisoning costs nothing on
// the happy path while making accidental reuse impossible.

// Clone returns an independent copy of the factorization, so callers
// can derive an updated factor while the original keeps serving solves.
// A poisoned factor clones poisoned.
func (c *Cholesky) Clone() *Cholesky {
	return &Cholesky{n: c.n, l: c.l.Clone(), lt: c.lt.Clone(), poisoned: c.poisoned}
}

// Update rewrites the factorization of A into the factorization of
// A + xxᵀ in O(n²) using Givens rotations. x is not modified. A
// degenerate pivot (zero, negative, or NaN — e.g. from an all-masked
// column after straddle reconciliation) returns
// ErrNotPositiveDefinite and poisons the factor instead of silently
// writing ±Inf/NaN into L.
func (c *Cholesky) Update(x []float64) error {
	if len(x) != c.n {
		return fmt.Errorf("matrix: cholesky update dim %d vs %d", len(x), c.n)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	work := make([]float64, c.n)
	copy(work, x)
	for k := 0; k < c.n; k++ {
		lkk := c.l.At(k, k)
		r := math.Hypot(lkk, work[k])
		if lkk <= 0 || r == 0 || math.IsNaN(r) {
			c.poisoned = true
			return fmt.Errorf("%w: update pivot %d = %g", ErrNotPositiveDefinite, k, lkk)
		}
		cos := r / lkk
		sin := work[k] / lkk
		c.l.Set(k, k, r)
		for i := k + 1; i < c.n; i++ {
			lik := (c.l.At(i, k) + sin*work[i]) / cos
			work[i] = cos*work[i] - sin*lik
			c.l.Set(i, k, lik)
		}
	}
	c.lt = c.l.Transpose()
	return nil
}

// Downdate rewrites the factorization of A into the factorization of
// A − xxᵀ in O(n²) using hyperbolic rotations. It fails with
// ErrNotPositiveDefinite when the result would not be positive
// definite (x carries more weight than A holds in some direction); the
// factor is poisoned in that case — later solves return
// ErrFactorPoisoned — and callers must fall back to a fresh
// factorization. x is not modified.
func (c *Cholesky) Downdate(x []float64) error {
	if len(x) != c.n {
		return fmt.Errorf("matrix: cholesky downdate dim %d vs %d", len(x), c.n)
	}
	if c.poisoned {
		return ErrFactorPoisoned
	}
	work := make([]float64, c.n)
	copy(work, x)
	for k := 0; k < c.n; k++ {
		lkk := c.l.At(k, k)
		d := (lkk - work[k]) * (lkk + work[k])
		if d <= 0 || math.IsNaN(d) {
			c.poisoned = true
			return fmt.Errorf("%w: downdate pivot %d = %g", ErrNotPositiveDefinite, k, d)
		}
		r := math.Sqrt(d)
		cos := r / lkk
		sin := work[k] / lkk
		c.l.Set(k, k, r)
		for i := k + 1; i < c.n; i++ {
			lik := (c.l.At(i, k) - sin*work[i]) / cos
			work[i] = cos*work[i] - sin*lik
			c.l.Set(i, k, lik)
		}
	}
	c.lt = c.l.Transpose()
	return nil
}
