package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestUpdateDegeneratePivotErrors is the regression test for the
// unguarded pivot division in Update: a factor with a zero diagonal
// (e.g. from an all-masked column after straddle reconciliation) used
// to produce silent ±Inf/NaN factors; it must now fail with
// ErrNotPositiveDefinite and poison the factor.
func TestUpdateDegeneratePivotErrors(t *testing.T) {
	l := NewDense(2, 2)
	l.Set(0, 0, 0) // degenerate pivot
	l.Set(1, 1, 1)
	c := &Cholesky{n: 2, l: l, lt: l.Transpose()}
	err := c.Update([]float64{1, 1})
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if v := c.l.At(i, j); math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("factor holds non-finite L[%d][%d] = %g after failed update", i, j, v)
			}
		}
	}
	if c.Valid() {
		t.Fatal("factor still valid after degenerate update pivot")
	}
	if err := c.SolveInto(make([]float64, 2), []float64{1, 1}, make([]float64, 2)); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from solve, got %v", err)
	}
}

// TestUpdateNaNInputErrors: a NaN in the update vector must surface as
// an error instead of propagating through the factor.
func TestUpdateNaNInputErrors(t *testing.T) {
	chol, err := NewCholesky(randomSPD(rand.New(rand.NewSource(1)), 4))
	if err != nil {
		t.Fatal(err)
	}
	err = chol.Update([]float64{1, math.NaN(), 0, 0})
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if chol.Valid() {
		t.Fatal("factor still valid after NaN update")
	}
}

// TestDowndateFailurePoisonsFactor is the regression test for the
// non-atomic Downdate failure: the pass used to return mid-loop with
// c.l partially rotated and c.lt stale, and a caller ignoring the error
// would silently solve against the inconsistent L/Lᵀ pair. Failure must
// now poison the factor so SolveInto and SolveManyInto refuse to run.
func TestDowndateFailurePoisonsFactor(t *testing.T) {
	// A = diag(4, 0.01): downdating by x = (1,1) succeeds at column 0
	// (mutating L) and then fails at column 1, exercising the partially
	// mutated state.
	a := NewDense(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 0.01)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	err = chol.Downdate([]float64{1, 1})
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if chol.Valid() {
		t.Fatal("factor still valid after failed downdate")
	}
	if err := chol.SolveInto(make([]float64, 2), []float64{1, 1}, make([]float64, 2)); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from SolveInto, got %v", err)
	}
	b := NewDense(2, 1)
	if err := chol.SolveManyInto(NewDense(2, 1), b, NewDense(2, 1)); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from SolveManyInto, got %v", err)
	}
	if err := chol.Update([]float64{1, 0}); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from Update, got %v", err)
	}
	// Poison survives cloning, and a poisoned factor cannot be promoted
	// into a prepared engine.
	if chol.Clone().Valid() {
		t.Fatal("clone of poisoned factor is valid")
	}
	h, err := NewCSR(2, 2, []Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPreparedLSFromFactor(h, chol, 0); !errors.Is(err, ErrFactorPoisoned) {
		t.Fatalf("want ErrFactorPoisoned from NewPreparedLSFromFactor, got %v", err)
	}
}

// roundTripOnce factors HᵀH, updates with one H row, downdates with the
// same row, and asserts the factor recovered to within tol.
func roundTripOnce(t *testing.T, rng *rand.Rand, rows, cols int, p float64, tol float64) {
	t.Helper()
	h := randomSparseH(rng, rows, cols, p)
	orig, err := NewCholesky(h.GramSerial())
	if err != nil {
		t.Fatalf("factor: %v", err)
	}
	x := make([]float64, cols)
	ri := rng.Intn(h.Rows())
	h.RowEntries(ri, func(c int, v float64) { x[c] = v })
	got := orig.Clone()
	if err := got.Update(x); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := got.Downdate(x); err != nil {
		t.Fatalf("downdate: %v", err)
	}
	factorEqualApprox(t, got, orig, tol)
}

// TestUpdateDowndateRoundTripProperty: over random sparse H, Update
// then Downdate with the same row must recover the original factor to
// 1e-10 (both triangles — catching any stale transpose).
func TestUpdateDowndateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		rows := 10 + rng.Intn(50)
		cols := 4 + rng.Intn(30)
		roundTripOnce(t, rng, rows, cols, 0.02+0.3*rng.Float64(), 1e-10)
	}
}

// FuzzUpdateDowndateRoundTrip drives the same property from fuzzed
// shape parameters.
func FuzzUpdateDowndateRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(10), uint8(30))
	f.Add(int64(99), uint8(60), uint8(34), uint8(5))
	f.Add(int64(-7), uint8(3), uint8(2), uint8(90))
	f.Fuzz(func(t *testing.T, seed int64, rows, cols, pctByte uint8) {
		r := 1 + int(rows)%64
		c := 1 + int(cols)%40
		p := float64(pctByte%100) / 100
		roundTripOnce(t, rand.New(rand.NewSource(seed)), r, c, p, 1e-10)
	})
}

// TestSparseUpdateDowndateRoundTripProperty is the sparse-factor analog
// of the dense round-trip property.
func TestSparseUpdateDowndateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		rows := 10 + rng.Intn(50)
		cols := 4 + rng.Intn(30)
		h := randomSparseH(rng, rows, cols, 0.02+0.2*rng.Float64())
		orig, err := NewSparseCholesky(h.SymGram(), KernelOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := make([]float64, cols)
		ri := rng.Intn(h.Rows())
		h.RowEntries(ri, func(c int, v float64) { x[c] = v })
		got := orig.Clone()
		if err := got.Update(x); err != nil {
			t.Fatalf("trial %d update: %v", trial, err)
		}
		if err := got.Downdate(x); err != nil {
			t.Fatalf("trial %d downdate: %v", trial, err)
		}
		for i, v := range got.val {
			if math.Abs(v-orig.val[i]) > 1e-10 {
				t.Fatalf("trial %d: factor entry %d drifted %g", trial, i, v-orig.val[i])
			}
		}
	}
}
