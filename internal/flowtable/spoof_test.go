package flowtable

import (
	"testing"

	"foces/internal/header"
)

func TestSpoofCounter(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput})); err != nil {
		t.Fatal(err)
	}
	tbl.Count(1, 100)
	if err := tbl.SpoofCounter(1, 42); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Counters()[1]; got != 42 {
		t.Fatalf("reported counter = %d, want spoofed 42", got)
	}
	if got := tbl.TrueCounters()[1]; got != 100 {
		t.Fatalf("true counter = %d, want 100", got)
	}
	// More matches keep accumulating underneath the lie.
	tbl.Count(1, 5)
	if got := tbl.Counters()[1]; got != 42 {
		t.Fatalf("spoof must persist, got %d", got)
	}
	if got := tbl.TrueCounters()[1]; got != 105 {
		t.Fatalf("true counter = %d, want 105", got)
	}
	tbl.ClearSpoofedCounters()
	if got := tbl.Counters()[1]; got != 105 {
		t.Fatalf("after clearing spoof, reported = %d, want 105", got)
	}
	if err := tbl.SpoofCounter(99, 1); err == nil {
		t.Fatal("spoofing unknown rule must error")
	}
}

func TestRemoveClearsSpoof(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput})); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SpoofCounter(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput})); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Counters()[1]; got != 0 {
		t.Fatalf("reinstalled rule inherited spoof: %d", got)
	}
}
