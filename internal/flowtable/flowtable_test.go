package flowtable

import (
	"sync"
	"testing"

	"foces/internal/header"
)

var layout = header.FiveTuple()

func dstRule(t *testing.T, id, prio int, ip uint64, act Action) Rule {
	t.Helper()
	m, err := layout.MatchExact(layout.Wildcard(), header.FieldDstIP, ip)
	if err != nil {
		t.Fatal(err)
	}
	return Rule{ID: id, Priority: prio, Match: m, Action: act}
}

func packetTo(t *testing.T, ip uint64) header.Packet {
	t.Helper()
	p, err := layout.PacketWithField(header.NewPacket(layout.Width()), header.FieldDstIP, ip)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstallLookupCount(t *testing.T) {
	tbl := NewTable(3)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 7, 10, ip, Action{Type: ActionOutput, Port: 2})); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Switch() != 3 {
		t.Fatalf("len=%d sw=%d", tbl.Len(), tbl.Switch())
	}
	r, act, ok := tbl.Lookup(packetTo(t, ip))
	if !ok || r.ID != 7 || act.Type != ActionOutput || act.Port != 2 {
		t.Fatalf("lookup = %+v %+v %v", r, act, ok)
	}
	if r.Switch != 3 {
		t.Fatalf("rule switch not stamped: %d", r.Switch)
	}
	if _, _, ok := tbl.Lookup(packetTo(t, header.IPv4(10, 0, 0, 2))); ok {
		t.Fatal("miss expected for other dst")
	}
	tbl.Count(7, 5)
	tbl.Count(7, 3)
	tbl.Count(99, 1) // unknown, ignored
	c := tbl.Counters()
	if c[7] != 8 {
		t.Fatalf("counter = %d", c[7])
	}
	if _, ok := c[99]; ok {
		t.Fatal("unknown rule must not appear in counters")
	}
	tbl.ResetCounters()
	if tbl.Counters()[7] != 0 {
		t.Fatal("reset failed")
	}
}

func TestInstallValidation(t *testing.T) {
	tbl := NewTable(0)
	if err := tbl.Install(Rule{ID: 1}); err == nil {
		t.Fatal("invalid match must error")
	}
	good := dstRule(t, 1, 1, header.IPv4(10, 0, 0, 1), Action{Type: ActionOutput})
	if err := tbl.Install(good); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(good); err == nil {
		t.Fatal("duplicate ID must error")
	}
	bad := good
	bad.ID = 2
	bad.Action = Action{}
	if err := tbl.Install(bad); err == nil {
		t.Fatal("invalid action must error")
	}
}

func TestPriorityOrder(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	low, err := layout.MatchPrefix(layout.Wildcard(), header.FieldDstIP, header.IPv4(10, 0, 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(Rule{ID: 1, Priority: 1, Match: low, Action: Action{Type: ActionOutput, Port: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(dstRule(t, 2, 100, ip, Action{Type: ActionOutput, Port: 4})); err != nil {
		t.Fatal(err)
	}
	r, _, ok := tbl.Lookup(packetTo(t, ip))
	if !ok || r.ID != 2 {
		t.Fatalf("priority lookup picked rule %d", r.ID)
	}
	// A packet in the /8 but not the /32 falls to the low-priority rule.
	r, _, ok = tbl.Lookup(packetTo(t, header.IPv4(10, 9, 9, 9)))
	if !ok || r.ID != 1 {
		t.Fatalf("fallback lookup picked rule %d ok=%v", r.ID, ok)
	}
}

func TestEqualPriorityTieBreaksByID(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 5, 10, ip, Action{Type: ActionOutput, Port: 1})); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(dstRule(t, 2, 10, ip, Action{Type: ActionOutput, Port: 2})); err != nil {
		t.Fatal(err)
	}
	r, _, _ := tbl.Lookup(packetTo(t, ip))
	if r.ID != 2 {
		t.Fatalf("tie-break picked %d, want 2", r.ID)
	}
}

func TestRemove(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput})); err != nil {
		t.Fatal(err)
	}
	tbl.Count(1, 3)
	if err := tbl.SetOverride(1, Override{Action: Action{Type: ActionDrop}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(1); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 || len(tbl.Counters()) != 0 || tbl.Overridden(1) {
		t.Fatal("remove must clear rule, counter and override")
	}
	if err := tbl.Remove(1); err == nil {
		t.Fatal("double remove must error")
	}
}

func TestOverridesAffectForwardingNotDump(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput, Port: 2})); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetOverride(1, Override{Action: Action{Type: ActionOutput, Port: 5}}); err != nil {
		t.Fatal(err)
	}
	_, act, ok := tbl.Lookup(packetTo(t, ip))
	if !ok || act.Port != 5 {
		t.Fatalf("override not applied: %+v", act)
	}
	dump := tbl.Dump()
	if len(dump) != 1 || dump[0].Action.Port != 2 {
		t.Fatalf("dump must lie with original action, got %+v", dump)
	}
	ids := tbl.OverriddenIDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("OverriddenIDs = %v", ids)
	}
	tbl.ClearOverride(1)
	_, act, _ = tbl.Lookup(packetTo(t, ip))
	if act.Port != 2 {
		t.Fatal("clear override failed")
	}
	if err := tbl.SetOverride(99, Override{}); err == nil {
		t.Fatal("override on unknown rule must error")
	}
	if err := tbl.SetOverride(1, Override{Action: Action{Type: ActionDrop}}); err != nil {
		t.Fatal(err)
	}
	tbl.ClearAllOverrides()
	if tbl.Overridden(1) {
		t.Fatal("ClearAllOverrides failed")
	}
}

func TestRuleAccessor(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 42, 1, ip, Action{Type: ActionDeliver, Port: 3})); err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.Rule(42)
	if !ok || r.Action.Type != ActionDeliver {
		t.Fatalf("Rule = %+v ok=%v", r, ok)
	}
	if _, ok := tbl.Rule(1); ok {
		t.Fatal("unknown rule must not resolve")
	}
}

func TestSymbolicMatchesPriorityCarving(t *testing.T) {
	tbl := NewTable(0)
	specific := header.IPv4(10, 0, 0, 1)
	hi, err := layout.MatchExact(layout.Wildcard(), header.FieldDstIP, specific)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := layout.MatchPrefix(layout.Wildcard(), header.FieldDstIP, header.IPv4(10, 0, 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(Rule{ID: 1, Priority: 100, Match: hi, Action: Action{Type: ActionOutput, Port: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install(Rule{ID: 2, Priority: 1, Match: lo, Action: Action{Type: ActionOutput, Port: 2}}); err != nil {
		t.Fatal(err)
	}
	matches := tbl.SymbolicMatches(layout.Wildcard())
	if len(matches) < 2 {
		t.Fatalf("want matches for both rules, got %d", len(matches))
	}
	// The specific packet must land only in rule 1's share.
	p := packetTo(t, specific)
	for _, m := range matches {
		in := m.Space.MatchesPacket(p)
		if m.Rule.ID == 1 && !in {
			t.Fatal("specific packet missing from high-priority share")
		}
		if m.Rule.ID == 2 && in {
			t.Fatal("specific packet leaked into low-priority share")
		}
	}
	// All shares must be pairwise disjoint.
	for i := range matches {
		for j := i + 1; j < len(matches); j++ {
			if matches[i].Space.Overlaps(matches[j].Space) {
				t.Fatalf("shares %d and %d overlap", i, j)
			}
		}
	}
}

func TestSymbolicMatchesMiss(t *testing.T) {
	tbl := NewTable(0)
	if got := tbl.SymbolicMatches(layout.Wildcard()); len(got) != 0 {
		t.Fatalf("empty table must not match, got %v", got)
	}
}

func TestConcurrentCountAndLookup(t *testing.T) {
	tbl := NewTable(0)
	ip := header.IPv4(10, 0, 0, 1)
	if err := tbl.Install(dstRule(t, 1, 1, ip, Action{Type: ActionOutput})); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	p := packetTo(t, ip)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tbl.Count(1, 1)
				tbl.Lookup(p)
				tbl.Counters()
			}
		}()
	}
	wg.Wait()
	if got := tbl.Counters()[1]; got != 8000 {
		t.Fatalf("concurrent counting lost updates: %d", got)
	}
}

func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"output:3":  {Type: ActionOutput, Port: 3},
		"drop":      {Type: ActionDrop},
		"deliver:1": {Type: ActionDeliver, Port: 1},
		"invalid":   {},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("Action%v.String() = %q, want %q", a, got, want)
		}
	}
}
