// Package flowtable implements the OpenFlow-style switch data plane:
// priority flow tables whose rules carry match fields, actions and
// packet counters, plus the compromised-switch behaviours of the FOCES
// threat model (§II-B): silently rewriting a rule's output port,
// dropping matched packets, detouring, and lying when the controller
// dumps the table.
//
// Counters follow OpenFlow semantics: a rule's counter increments when a
// packet matches it, regardless of what the (possibly tampered) action
// then does. This is exactly why a compromised switch's own counters
// stay plausible while downstream counters betray the anomaly.
package flowtable

import (
	"fmt"
	"sort"
	"sync"

	"foces/internal/header"
	"foces/internal/topo"
)

// ActionType enumerates forwarding actions.
type ActionType int

// Supported actions.
const (
	ActionOutput  ActionType = iota + 1 // forward out of Port
	ActionDrop                          // discard the packet
	ActionDeliver                       // hand to the locally attached host
)

// Action is one forwarding action.
type Action struct {
	Type ActionType
	Port int // valid for ActionOutput and ActionDeliver
}

func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionDrop:
		return "drop"
	case ActionDeliver:
		return fmt.Sprintf("deliver:%d", a.Port)
	default:
		return "invalid"
	}
}

// Rule is one flow-table entry. ID is a controller-assigned global rule
// index (dense across the whole network) so rules map directly to FCM
// rows.
type Rule struct {
	ID       int
	Switch   topo.SwitchID
	Priority int
	Match    header.Space
	Action   Action
}

// Override is an adversarial modification applied by a compromised
// switch to one of its rules. It affects forwarding only: table dumps
// and counters keep reporting the original, innocent-looking state.
type Override struct {
	Action Action
}

// Table is a single switch's flow table. It is safe for concurrent use.
type Table struct {
	mu        sync.RWMutex
	sw        topo.SwitchID
	rules     []*Rule // sorted by priority desc, then ID asc
	byID      map[int]*Rule
	counters  map[int]uint64
	overrides map[int]Override
	// spoofed holds adversarial counter values reported instead of the
	// real ones (§II-B: the adversary "can modify the counters of rules
	// at compromised switches, so as to pretend to have correctly
	// forwarded packets").
	spoofed map[int]uint64
}

// NewTable returns an empty table for the given switch.
func NewTable(sw topo.SwitchID) *Table {
	return &Table{
		sw:        sw,
		byID:      make(map[int]*Rule),
		counters:  make(map[int]uint64),
		overrides: make(map[int]Override),
		spoofed:   make(map[int]uint64),
	}
}

// Switch reports the owning switch.
func (t *Table) Switch() topo.SwitchID { return t.sw }

// Len reports the number of installed rules.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Install adds a rule. Rule IDs must be unique per network; matches must
// be valid header spaces.
func (t *Table) Install(r Rule) error {
	if !r.Match.Valid() {
		return fmt.Errorf("flowtable: rule %d has invalid match", r.ID)
	}
	if r.Action.Type < ActionOutput || r.Action.Type > ActionDeliver {
		return fmt.Errorf("flowtable: rule %d has invalid action", r.ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byID[r.ID]; dup {
		return fmt.Errorf("flowtable: duplicate rule id %d on switch %d", r.ID, t.sw)
	}
	r.Switch = t.sw
	rp := &r
	t.byID[r.ID] = rp
	t.rules = append(t.rules, rp)
	sort.SliceStable(t.rules, func(i, j int) bool {
		if t.rules[i].Priority != t.rules[j].Priority {
			return t.rules[i].Priority > t.rules[j].Priority
		}
		return t.rules[i].ID < t.rules[j].ID
	})
	return nil
}

// Remove deletes a rule by ID. The table itself would accept a later
// Install reusing the ID, but the controller's allocator never reclaims
// one: a removed rule ID stays retired forever, so epoch logs, FCM rows
// and counter vectors can key on rule ID without ABA confusion (see
// controller.Controller.RuleSpace).
func (t *Table) Remove(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("flowtable: no rule %d on switch %d", id, t.sw)
	}
	delete(t.byID, id)
	delete(t.counters, id)
	delete(t.overrides, id)
	delete(t.spoofed, id)
	for i, r := range t.rules {
		if r.ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	return nil
}

// Rule returns a copy of the rule with the given ID.
func (t *Table) Rule(id int) (Rule, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.byID[id]
	if !ok {
		return Rule{}, false
	}
	return *r, true
}

// Lookup returns the highest-priority rule matching the packet and the
// action the switch will actually take (the override, if any). ok is
// false on table miss.
func (t *Table) Lookup(p header.Packet) (r Rule, act Action, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, cand := range t.rules {
		if cand.Match.MatchesPacket(p) {
			act := cand.Action
			if ov, tampered := t.overrides[cand.ID]; tampered {
				act = ov.Action
			}
			return *cand, act, true
		}
	}
	return Rule{}, Action{}, false
}

// Count adds n matched packets to rule id's counter. Unknown IDs are
// ignored (a rule may have been removed between match and count in a
// live switch).
func (t *Table) Count(id int, n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; ok {
		t.counters[id] += n
	}
}

// Counters returns a snapshot of rule counters keyed by rule ID, as
// the switch *reports* them: spoofed values take precedence over real
// ones on a compromised switch.
func (t *Table) Counters() map[int]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[int]uint64, len(t.counters))
	for id := range t.byID {
		if v, lied := t.spoofed[id]; lied {
			out[id] = v
			continue
		}
		out[id] = t.counters[id]
	}
	return out
}

// TrueCounters returns the real match counts, bypassing spoofing (test
// and simulation introspection only — a real controller cannot call
// this).
func (t *Table) TrueCounters() map[int]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[int]uint64, len(t.counters))
	for id := range t.byID {
		out[id] = t.counters[id]
	}
	return out
}

// SpoofCounter makes the table report value for rule id regardless of
// the real match count.
func (t *Table) SpoofCounter(id int, value uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("flowtable: no rule %d on switch %d", id, t.sw)
	}
	t.spoofed[id] = value
	return nil
}

// ClearSpoofedCounters stops all counter lying on the table.
func (t *Table) ClearSpoofedCounters() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.spoofed {
		delete(t.spoofed, id)
	}
}

// ResetCounters zeroes all counters (start of a collection window).
func (t *Table) ResetCounters() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.counters {
		delete(t.counters, id)
	}
}

// Dump returns the rules as the switch *reports* them: the original
// rules, never the overrides, reflecting the adversary's ability to lie
// to the controller (§II-B).
func (t *Table) Dump() []Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Rule, len(t.rules))
	for i, r := range t.rules {
		out[i] = *r
	}
	return out
}

// SetOverride installs an adversarial action override on a rule.
func (t *Table) SetOverride(id int, ov Override) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("flowtable: no rule %d on switch %d", id, t.sw)
	}
	t.overrides[id] = ov
	return nil
}

// ClearOverride removes an adversarial override ("repairing" the rule).
func (t *Table) ClearOverride(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.overrides, id)
}

// ClearAllOverrides removes every override on the table.
func (t *Table) ClearAllOverrides() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.overrides {
		delete(t.overrides, id)
	}
}

// Overridden reports whether rule id currently has an override.
func (t *Table) Overridden(id int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.overrides[id]
	return ok
}

// OverriddenIDs returns the IDs of overridden rules in ascending order.
func (t *Table) OverriddenIDs() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, 0, len(t.overrides))
	for id := range t.overrides {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SymbolicMatch pairs a rule with the sub-space of an injected symbolic
// header that reaches it after higher-priority rules carve their share.
type SymbolicMatch struct {
	Rule  Rule
	Space header.Space
}

// SymbolicMatches propagates a symbolic header through the table in
// priority order. Each returned entry holds a rule and the disjoint
// portion of the input space that the rule would match, exactly as in
// ATPG's all-reachability computation.
func (t *Table) SymbolicMatches(s header.Space) []SymbolicMatch {
	out, _ := t.SymbolicMatchesWithRemainder(s)
	return out
}

// SymbolicMatchesWithRemainder is SymbolicMatches plus the unmatched
// remainder: the (possibly empty) disjoint pieces of the input space no
// rule matches, which the switch would drop table-miss. Under an
// incomplete rule set — e.g. after a mid-path rule removal — traffic in
// the remainder still incremented every earlier hop's counters, so FCM
// generation must account for these deaths rather than ignore them.
func (t *Table) SymbolicMatchesWithRemainder(s header.Space) ([]SymbolicMatch, []header.Space) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []SymbolicMatch
	remaining := []header.Space{s}
	for _, r := range t.rules {
		if len(remaining) == 0 {
			break
		}
		var next []header.Space
		for _, rem := range remaining {
			hit, ok := rem.Intersect(r.Match)
			if !ok {
				next = append(next, rem)
				continue
			}
			out = append(out, SymbolicMatch{Rule: *r, Space: hit})
			next = append(next, header.Subtract(rem, r.Match)...)
		}
		remaining = next
	}
	return out, remaining
}
