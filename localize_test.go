package foces_test

import (
	"math/rand"
	"testing"

	"foces"
)

// End-to-end diagnosis: an attacked window run with a LocalizeConfig
// must come back with a ranked culprit report naming the compromised
// rule, within the probe budget, and the verdict ring must carry the
// localized flag.
func TestRunLocalizesInjectedAttack(t *testing.T) {
	for _, kind := range []foces.AttackKind{foces.AttackPortSwap, foces.AttackDrop} {
		t.Run(kind.String(), func(t *testing.T) {
			sys := newSystem(t, "fattree4", foces.PairExact)
			sys.EnableTelemetry(foces.NewTelemetryRegistry())
			rng := rand.New(rand.NewSource(41))
			atk, err := sys.InjectRandomAttack(rng, kind)
			if err != nil {
				t.Fatal(err)
			}
			y, err := sys.ObserveCounters(rng, 1000)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Localize: &foces.LocalizeConfig{Seed: 41}}})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Anomalous {
				t.Fatalf("attack not even detected: %+v", rep)
			}
			loc := rep.Localization
			if loc == nil {
				t.Fatal("anomalous localizing run carries no Localization")
			}
			if loc.Error != "" {
				t.Fatalf("localization failed: %s", loc.Error)
			}
			top, ok := loc.TopCulprit()
			if !ok || !loc.Localized {
				t.Fatalf("attack not localized: %+v", loc.Outcome)
			}
			if top.RuleID != atk.RuleID || top.Switch != atk.Switch {
				t.Fatalf("accused rule %d on switch %v, want rule %d on switch %v",
					top.RuleID, top.Switch, atk.RuleID, atk.Switch)
			}
			if loc.ProbesUsed > loc.ProbeBudget {
				t.Fatalf("spent %d probes over budget %d", loc.ProbesUsed, loc.ProbeBudget)
			}
			if rep.Timings.Localize <= 0 {
				t.Fatal("Timings.Localize not recorded")
			}
			events := sys.RecentRuns()
			if last := events[len(events)-1]; !last.Localized {
				t.Fatalf("verdict ring missed the localization: %+v", last)
			}
		})
	}
}

// A clean window with localization enabled must not probe: the config
// is an opt-in for anomalous verdicts only.
func TestRunSkipsLocalizationWhenClean(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(43))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Localize: &foces.LocalizeConfig{}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Anomalous {
		t.Fatalf("clean network flagged: %+v", rep)
	}
	if rep.Localization != nil || rep.Timings.Localize != 0 {
		t.Fatalf("clean run probed anyway: %+v", rep.Localization)
	}
}

// Without a LocalizeConfig the detection path is untouched — no
// Localization block, no localize timing, even on anomalous windows.
func TestRunWithoutLocalizeConfigIsDetectionOnly(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(44))
	if _, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
		t.Fatal(err)
	}
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(foces.Observation{Vector: y})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Anomalous {
		t.Fatal("attack not detected")
	}
	if rep.Localization != nil || rep.Timings.Localize != 0 {
		t.Fatalf("nil LocalizeConfig still probed: %+v", rep.Localization)
	}
}

// RunBatch routes localization exactly like Run, on both the batched
// clean path and the per-window fallback path.
func TestRunBatchLocalizes(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	rng := rand.New(rand.NewSource(45))
	atk, err := sys.InjectRandomAttack(rng, foces.AttackDrop)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &foces.LocalizeConfig{Seed: 45}
	obs := []foces.Observation{
		{Vector: y, RunOptions: foces.RunOptions{Localize: cfg}},                         // batched (ModeAuto, clean path)
		{Vector: y, RunOptions: foces.RunOptions{Mode: foces.ModeSliced, Localize: cfg}}, // fallback (not batchable)
	}
	reports, err := sys.RunBatch(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.Anomalous {
			t.Fatalf("window %d: attack not detected", i)
		}
		loc := rep.Localization
		if loc == nil || !loc.Localized {
			t.Fatalf("window %d: not localized: %+v", i, loc)
		}
		top, _ := loc.TopCulprit()
		if top.RuleID != atk.RuleID {
			t.Fatalf("window %d: accused rule %d, want %d", i, top.RuleID, atk.RuleID)
		}
	}
}

// Probe telemetry: a localizing run must move the foces_probe_*
// families.
func TestLocalizationTelemetry(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	reg := foces.NewTelemetryRegistry()
	sys.EnableTelemetry(reg)
	rng := rand.New(rand.NewSource(46))
	if _, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
		t.Fatal(err)
	}
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Localize: &foces.LocalizeConfig{Seed: 46}}}); err != nil {
		t.Fatal(err)
	}
	var localizations, probes float64
	for _, fam := range reg.Gather() {
		switch fam.Name {
		case "foces_probe_localizations_total":
			for _, s := range fam.Samples {
				localizations += s.Value
			}
		case "foces_probe_probes_total":
			for _, s := range fam.Samples {
				probes += s.Value
			}
		}
	}
	if localizations != 1 {
		t.Fatalf("foces_probe_localizations_total = %v, want 1", localizations)
	}
	if probes < 1 {
		t.Fatalf("foces_probe_probes_total = %v, want >= 1", probes)
	}
}
