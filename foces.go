// Package foces is a network-wide forwarding-anomaly detector for
// software-defined networks, reproducing "FOCES: Detecting Forwarding
// Anomalies in Software Defined Networks" (Zhang et al., ICDCS 2018).
//
// FOCES models the controller's intended forwarding behaviour as a
// flow-counter equation system H·X = Y: H (the flow-counter matrix)
// relates every logical flow to every rule it matches, X is the vector
// of flow volumes, and Y is the vector of rule counters. Each detection
// period FOCES collects the live counters Y', computes the
// least-squares estimate X̂ = (HᵀH)⁻¹HᵀY', and inspects the error
// vector Δ = |Y' − H·X̂|: when the anomaly index max(Δ)/median(Δ)
// exceeds a threshold (default 4.5), some flow is not following the
// path the controller installed — a compromised switch is rewriting,
// detouring or dropping traffic.
//
// The package exposes the full pipeline the paper describes:
//
//   - topology generators (FatTree, BCube, DCell, a Stanford-like
//     backbone) and a builder for custom networks;
//   - a controller that computes shortest-path rules (per-pair exact or
//     per-destination aggregate) with deterministic ECMP spreading;
//   - a simulated data plane with per-link loss, OpenFlow-semantics
//     rule counters, port statistics, and threat-model attack
//     injection;
//   - ATPG-style FCM generation from controller intent;
//   - the baseline detector (Algorithm 1), the sliced detector
//     (Algorithm 2) with per-switch localization, and the Theorem 1/2
//     detectability analysis;
//   - an OpenFlow-like control channel and statistics collector.
//
// Most applications start with NewSystem and drive detection through
// System.Run — the single supported entry point: one Observation in,
// one Report out. Backlogs of windows (catch-up after an outage,
// offline replay) can go through System.RunBatch, which amortizes the
// triangular solves across the batch via a multi-RHS kernel while
// returning exactly the Reports the equivalent Run loop would; Run
// remains the right call for live period-at-a-time monitoring.
//
//	top, _ := foces.FatTree(4)
//	sys, _ := foces.NewSystem(top, foces.PairExact)
//	y, _ := sys.ObserveCounters(rng, 1000) // or collect real counters
//	rep, _ := sys.Run(foces.Observation{Vector: y})
//	if rep.Anomalous { ... }
//
// An Observation carries either a prepared counter vector (Vector) or
// raw per-rule counters (Counters), plus optionally the switches that
// failed to report (Missing) and the baseline epoch the window was
// collected under (Epoch). Run validates the observation and picks the
// dispatch path itself: degraded windows take the partial-detection
// path, windows collected under an older epoch take the reconciled
// (masked-row) path, everything else the clean path. The Report records
// which path ran, both engines' verdicts, localization suspects, and
// per-stage timings. The older methods Detect, DetectSliced,
// DetectWithMissing, DetectSlicedWithMissing and DetectReconciled are
// deprecated wrappers over Run and will keep working.
//
// # Steady-state monitoring
//
// The flow-counter matrix H only changes when the controller installs
// rules, so the expensive part of detection — assembling and factoring
// HᵀH — is done once, not every period. NewSystem prepares the
// factorizations up front and System.Run reuses them, so a production
// monitor is simply:
//
//	sys, _ := foces.NewSystem(top, foces.PairExact) // factors once
//	for range ticker.C {                            // every period
//		rep, err := sys.Run(foces.Observation{Counters: collected})
//		if err == nil && rep.Anomalous { alert(rep.Suspects) }
//	}
//
// Each period costs only triangular solves, a sparse mat-vec and order
// statistics per slice, with slices checked in parallel. After any
// rule change call sys.RebuildBaseline() — detection against a stale
// baseline checks the wrong intent and will flag honest switches.
// Standalone engines over a bare FCM are available via NewDetector and
// NewSlicedDetector; both are safe for concurrent use.
//
// # Observability
//
// EnableTelemetry wires a System to a TelemetryRegistry (construct one
// with NewTelemetryRegistry, or NewNopTelemetryRegistry to disable):
// both detection engines, the churn manager and Run itself record
// staged timings, anomaly-index distributions and verdict counts into
// Prometheus-exposable families (see README.md for the catalogue), and
// RecentRuns exposes a ring of the latest Run verdicts. The registry's
// Handler serves text-exposition format 0.0.4. The hot path performs
// only atomic updates — label children are resolved once at wiring
// time — so instrumentation is effectively free.
package foces

import (
	"foces/internal/analysis"
	"foces/internal/churn"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/fcm"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/matrix"
	"foces/internal/stats"
	"foces/internal/topo"
	"foces/internal/verify"
)

// Re-exported core types. Aliases keep the implementation in internal
// packages while giving users a single import.
type (
	// Topology is an immutable switch/host graph.
	Topology = topo.Topology
	// TopologyBuilder incrementally constructs a Topology.
	TopologyBuilder = topo.Builder
	// SwitchID identifies a switch.
	SwitchID = topo.SwitchID
	// HostID identifies a host.
	HostID = topo.HostID
	// Switch is one forwarding element.
	Switch = topo.Switch
	// Host is one end host.
	Host = topo.Host

	// Rule is one flow-table entry.
	Rule = flowtable.Rule
	// Action is a rule's forwarding action.
	Action = flowtable.Action
	// ActionType enumerates forwarding actions.
	ActionType = flowtable.ActionType
	// FlowTable is one switch's rule table.
	FlowTable = flowtable.Table

	// HeaderLayout names the packet fields used in matches.
	HeaderLayout = header.Layout
	// HeaderSpace is a ternary match over packet headers.
	HeaderSpace = header.Space

	// Network is the simulated data plane.
	Network = dataplane.Network
	// TrafficMatrix maps host pairs to offered volume.
	TrafficMatrix = dataplane.TrafficMatrix
	// FlowKey identifies a (src, dst) traffic flow.
	FlowKey = dataplane.FlowKey
	// Attack is one rule-level compromise.
	Attack = dataplane.Attack
	// AttackKind enumerates threat-model anomalies.
	AttackKind = dataplane.AttackKind
	// PortCounters is one switch's port statistics.
	PortCounters = dataplane.PortCounters

	// Controller computes and installs forwarding rules.
	Controller = controller.Controller
	// PolicyMode selects the rule-installation policy.
	PolicyMode = controller.PolicyMode

	// FCM is the flow-counter matrix with its metadata.
	FCM = fcm.FCM
	// Flow is one logical flow (an equivalence class of packets).
	Flow = fcm.Flow
	// Pair is a (src, dst) host pair carried by a flow.
	Pair = fcm.Pair

	// DetectOptions tunes detection.
	DetectOptions = core.Options
	// Result is one detection outcome.
	Result = core.Result
	// Detector is a prepared factor-once/detect-many Algorithm 1 engine.
	Detector = core.Detector
	// SlicedDetector is a prepared, parallel Algorithm 2 engine.
	SlicedDetector = core.SlicedDetector
	// Slice is one per-switch sub-FCM.
	Slice = core.Slice
	// SlicedOutcome is a sliced detection outcome with localization.
	SlicedOutcome = core.SlicedOutcome
	// PartialResult is a detection outcome restricted to reachable
	// switches (missing-switch degraded mode).
	PartialResult = core.PartialResult
	// Detectability is a Theorem 1/2 detectability verdict.
	Detectability = core.Detectability
	// Solver selects the least-squares backend.
	Solver = core.Solver
	// KernelOptions tunes the parallel blocked linear-algebra kernels
	// (Gram assembly, blocked Cholesky, slice-build fan-out) and the
	// sparse-vs-dense solver selection.
	KernelOptions = matrix.KernelOptions
	// SparseMode selects the normal-equations backend: automatic
	// density-based selection, forced sparse, or forced dense.
	SparseMode = matrix.SparseMode

	// RuleChange is one controller rule mutation event.
	RuleChange = controller.RuleChange
	// RuleOp enumerates rule mutation kinds.
	RuleOp = controller.RuleOp
	// ChurnManager maintains an epoch-versioned detection baseline
	// under rule churn.
	ChurnManager = churn.Manager
	// ChurnConfig tunes incremental baseline maintenance.
	ChurnConfig = churn.Config
	// ChurnUpdate is one applied epoch of rule churn.
	ChurnUpdate = churn.Update
	// ChurnStats summarizes incremental-maintenance work.
	ChurnStats = churn.Stats
)

// Rule mutation kinds.
const (
	// RuleAdded is a new rule installation.
	RuleAdded = controller.RuleAdded
	// RuleRemoved is a rule deletion (its ID is retired forever).
	RuleRemoved = controller.RuleRemoved
	// RuleModified is an in-place rewrite (same switch, same ID).
	RuleModified = controller.RuleModified
)

// Sparse solver modes for KernelOptions.Sparse.
const (
	// SparseAuto picks sparse or dense from the Gram's size and density.
	SparseAuto = matrix.SparseAuto
	// SparseAlways forces the sparse Cholesky path.
	SparseAlways = matrix.SparseAlways
	// SparseNever forces the dense path.
	SparseNever = matrix.SparseNever
)

// Policy modes.
const (
	// PairExact installs one exact (src, dst) rule per flow per hop.
	PairExact = controller.PairExact
	// DestAggregate installs one per-destination rule per switch.
	DestAggregate = controller.DestAggregate
)

// Forwarding actions.
const (
	// ActionOutput forwards out of a port.
	ActionOutput = flowtable.ActionOutput
	// ActionDrop discards matched packets.
	ActionDrop = flowtable.ActionDrop
	// ActionDeliver hands packets to the locally attached host.
	ActionDeliver = flowtable.ActionDeliver
)

// Attack kinds.
const (
	// AttackPortSwap rewrites a rule's output port.
	AttackPortSwap = dataplane.AttackPortSwap
	// AttackDrop silently discards matched packets.
	AttackDrop = dataplane.AttackDrop
)

// Solvers.
const (
	// SolverCholesky solves the normal equations by Cholesky
	// factorization (the paper's approach).
	SolverCholesky = core.SolverCholesky
	// SolverCG uses conjugate gradient without materializing HᵀH.
	SolverCG = core.SolverCG
)

// DefaultThreshold is the paper's default anomaly-index threshold
// T = 4.5 (§IV-A).
const DefaultThreshold = stats.DefaultThreshold

// SetKernelDefaults installs process-wide defaults for the parallel
// blocked linear-algebra kernels used during baseline preparation
// (Gram assembly, Cholesky factorization, slice builds) and returns
// the previous defaults. The zero KernelOptions selects automatic
// sizing (GOMAXPROCS workers, the built-in block size); Serial forces
// the reference single-threaded kernels. Parallel and serial kernels
// produce bitwise-identical Gram matrices and, for the blocked factor,
// results equal up to floating-point roundoff with identical
// positive-definiteness verdicts. Safe for concurrent use; takes
// effect for engines prepared after the call.
func SetKernelDefaults(o KernelOptions) KernelOptions { return matrix.SetKernelDefaults(o) }

// KernelDefaults reports the current process-wide kernel defaults.
func KernelDefaults() KernelOptions { return matrix.KernelDefaults() }

// Topology generators.

// FatTree builds the standard k-ary fat-tree (k even).
func FatTree(k int) (*Topology, error) { return topo.FatTree(k) }

// BCube builds BCube(n, k) with forwarding hosts modelled as proxy
// switches.
func BCube(n, k int) (*Topology, error) { return topo.BCube(n, k) }

// DCell builds DCell(n, 1) with forwarding servers modelled as proxy
// switches.
func DCell(n int) (*Topology, error) { return topo.DCell(n) }

// Stanford builds the synthesized 26-switch Stanford-like backbone.
func Stanford() (*Topology, error) { return topo.Stanford() }

// Jellyfish builds a seeded random degree-regular fabric of n switches
// with hostsPer hosts each — an unstructured topology for stress
// testing the detector beyond the paper's symmetric fabrics.
func Jellyfish(n, degree, hostsPer int, seed int64) (*Topology, error) {
	return topo.Jellyfish(n, degree, hostsPer, seed)
}

// TopologyByName builds one of the evaluation topologies by its paper
// name: "stanford", "fattree4", "fattree8", "bcube14" or "dcell14".
func TopologyByName(name string) (*Topology, error) { return topo.ByName(name) }

// NewTopologyBuilder starts a custom topology.
func NewTopologyBuilder(name string) *TopologyBuilder { return topo.NewBuilder(name) }

// FiveTuple returns the default TCP/IP five-tuple header layout.
func FiveTuple() *HeaderLayout { return header.FiveTuple() }

// UniformTraffic offers the same volume on every ordered host pair.
func UniformTraffic(t *Topology, packetsPerFlow uint64) TrafficMatrix {
	return dataplane.UniformTraffic(t, packetsPerFlow)
}

// GenerateFCM computes the flow-counter matrix for a rule set over a
// topology via ATPG-style symbolic traversal.
func GenerateFCM(t *Topology, layout *HeaderLayout, rules []Rule) (*FCM, error) {
	return fcm.Generate(t, layout, rules)
}

// FCMFromHistories assembles an FCM directly from explicit flow rule
// histories — useful for worked examples and external reachability
// tooling.
func FCMFromHistories(t *Topology, rules []Rule, histories [][]int) (*FCM, error) {
	return fcm.FromHistories(t, rules, histories)
}

// IntentReport is the outcome of intent verification.
type IntentReport = verify.Report

// CoverageReport summarizes detectability over all single-rule
// deviations a topology admits.
type CoverageReport = analysis.Report

// AnalyzeCoverage enumerates every single-rule port-swap deviation and
// classifies its detectability (Theorems 1 and 2) — the operator's
// answer to "what could an adversary get away with here?".
func AnalyzeCoverage(f *FCM) (CoverageReport, error) {
	return analysis.Coverage(f)
}

// Harden realizes the paper's second future-work direction: it finds
// the masked deviations, installs canary rules that give each deviated
// path an unexplainable counter, and returns the hardened FCM with
// before/after coverage reports. Forwarding behaviour is unchanged.
func Harden(f *FCM) (hardened *FCM, before, after CoverageReport, err error) {
	return analysis.Harden(f)
}

// VerifyIntent validates a rule set before it becomes the detection
// baseline: all host pairs reachable and correctly delivered, no
// shadowed rules, no forwarding loops. Run it whenever rules change —
// an FCM generated from broken intent would flag honest switches.
func VerifyIntent(t *Topology, layout *HeaderLayout, rules []Rule) (IntentReport, error) {
	return verify.Intent(t, layout, rules)
}

// Detect runs the threshold-based detection algorithm (Algorithm 1) on
// an FCM and observed counter vector. Each call re-factors the normal
// equations; steady-state monitors should prepare once with
// NewDetector (or use System, which embeds the prepared engines).
func Detect(f *FCM, y []float64, opts DetectOptions) (Result, error) {
	return core.Detect(f.H, y, opts)
}

// NewDetector prepares a factor-once/detect-many Algorithm 1 engine
// over the FCM: the O(n³) factorization runs here, and every
// subsequent Detector.Detect costs only triangular solves, one SpMV
// and order statistics. Rebuild the engine whenever the rule set (and
// hence the FCM) changes. Safe for concurrent Detect calls.
func NewDetector(f *FCM, opts DetectOptions) (*Detector, error) {
	return core.NewDetector(f.H, opts)
}

// BuildSlices derives per-switch sub-FCMs for sliced detection (§IV-B).
func BuildSlices(f *FCM) ([]Slice, error) { return core.BuildSlices(f) }

// DetectSliced runs the sliced detection algorithm (Algorithm 2)
// sequentially, re-factoring every slice. Steady-state monitors should
// prepare once with NewSlicedDetector (or use System, which embeds the
// prepared engines).
func DetectSliced(slices []Slice, y []float64, opts DetectOptions) (SlicedOutcome, error) {
	return core.DetectSliced(slices, y, opts)
}

// NewSlicedDetector prepares a parallel Algorithm 2 engine: every
// slice's sub-FCM is factored once and bounds-checked against the
// FCM's rule count, and each Detect fans the slices out over a
// GOMAXPROCS-bounded worker pool with an outcome identical to a
// sequential run. Rebuild on any rule change. Safe for concurrent
// Detect calls.
func NewSlicedDetector(f *FCM, slices []Slice, opts DetectOptions) (*SlicedDetector, error) {
	return core.NewSlicedDetector(slices, f.NumRules(), opts)
}

// AnalyzeDetectability evaluates whether a hypothetical forwarding
// anomaly with modified rule history hPrime is detectable (Theorems 1
// and 2).
func AnalyzeDetectability(f *FCM, hPrime []int) (Detectability, error) {
	return core.AnalyzeDetectability(f, hPrime)
}
