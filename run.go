package foces

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"foces/internal/core"
	"foces/internal/telemetry"
)

// This file is the unified detection entry point. Historically System
// grew five Detect* methods (Detect, DetectSliced, DetectWithMissing,
// DetectSlicedWithMissing, DetectReconciled) whose correct choice
// depended on collection-plane state the caller had to inspect by
// hand. System.Run collapses them: describe one observation window —
// counters, which switches failed to report, which baseline epoch the
// window was snapshotted under — and Run dispatches to the right
// engine combination and returns a single Report. The legacy methods
// survive as thin deprecated wrappers over Run.

// Mode selects which detection engines a Run executes.
type Mode int

const (
	// ModeAuto runs both the full-FCM engine (Algorithm 1) and the
	// per-switch sliced engine (Algorithm 2) — the monitoring default:
	// a network-wide verdict plus localization.
	ModeAuto Mode = iota
	// ModeFull runs only Algorithm 1.
	ModeFull
	// ModeSliced runs only Algorithm 2.
	ModeSliced
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFull:
		return "full"
	case ModeSliced:
		return "sliced"
	}
	return "mode-" + fmt.Sprint(int(m))
}

// MarshalJSON emits the mode's name, keeping serialized reports
// self-describing instead of leaking iota ordering.
func (m Mode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// Report.Path values: the dispatch route a Run took.
const (
	// PathClean is the steady-state route: every switch reported and
	// the window matches the current baseline epoch.
	PathClean = "clean"
	// PathMissing is the degraded route: one or more switches did not
	// report, so their rule rows are dropped from the equation system.
	PathMissing = "missing"
	// PathReconciled is the churn route: the window straddles one or
	// more rule updates, so rows changed since its baseline epoch are
	// masked out.
	PathReconciled = "reconciled"
)

// RunOptions is everything that shapes how a window is detected and
// diagnosed, separate from the measurements themselves. It is the one
// option surface behind Run: each deprecated Detect* wrapper is now a
// one-line translation of its legacy signature into a RunOptions
// value, and new knobs (like Localize) land here once instead of
// fanning out across five method signatures.
type RunOptions struct {
	// Missing lists switches whose counters are unusable this window
	// (unreachable, quarantined, reset). A non-nil slice — even an
	// empty one — selects the degraded partial-detection path; nil
	// means every switch reported.
	Missing []SwitchID
	// Epoch is the baseline epoch the window's counters were
	// snapshotted under (PollResult straddle reporting). When it trails
	// the system's current epoch, Run masks the rule rows changed in
	// between instead of reading mixed-generation counters as an
	// anomaly. Callers polling without churn awareness should set it to
	// System.Epoch(). A non-nil Missing takes precedence: faults are
	// reconciled before churn, matching the monitor's legacy dispatch.
	Epoch uint64
	// Mode selects the engines to run; the zero value (ModeAuto) runs
	// both.
	Mode Mode
	// Options overrides the system's detection options for this window.
	// The zero value inherits the options fixed at construction. On the
	// reconciled path the engines' construction-time options always
	// apply (masking reuses the prepared factors).
	Options DetectOptions
	// Localize opts the window into active-probe localization: when the
	// verdict is anomalous, Run probes the suspect set and attaches a
	// ranked culprit report to Report.Localization. Nil (the default)
	// skips probing entirely and leaves the detection path untouched.
	Localize *LocalizeConfig
}

// Observation describes one collection window for System.Run: the
// measurements (exactly one of Counters and Vector) plus the embedded
// RunOptions describing how to detect and diagnose them.
//
// Counters is a rule-ID keyed snapshot (collector output), Vector a
// pre-built dense vector indexed by rule ID (simulation output). The
// missing-switch path requires Counters, since dropped rows must be
// re-gathered per sub-system.
type Observation struct {
	// Counters is the window's per-rule counter snapshot (deltas for a
	// live collector), keyed by global rule ID.
	Counters map[int]uint64
	// Vector is the window's dense counter vector, an alternative to
	// Counters for callers that already hold Y'.
	Vector []float64
	// RunOptions shapes detection and diagnosis for this window; its
	// fields promote, so obs.Missing, obs.Epoch, obs.Mode, obs.Options
	// and obs.Localize read as before the options were unified.
	RunOptions
}

// RunTimings carries a Run's per-stage wall times.
type RunTimings struct {
	// Full is the Algorithm 1 stage (zero when not run).
	Full time.Duration `json:"fullNs"`
	// Sliced is the Algorithm 2 stage (zero when not run).
	Sliced time.Duration `json:"slicedNs"`
	// Localize is the active-probe localization stage (zero when the
	// observation carried no LocalizeConfig or the verdict was clean).
	Localize time.Duration `json:"localizeNs"`
	// Total is the end-to-end Run wall time.
	Total time.Duration `json:"totalNs"`
}

// ReportSchema identifies the Report wire format. Report.MarshalJSON
// stamps it into every serialized report, so consumers of the /status
// recent ring, StreamReport payloads and archived experiment results
// can dispatch on the version instead of sniffing fields. Bump it when
// a field changes meaning or shape; adding optional fields is
// compatible and does not bump.
const ReportSchema = "foces/report/v1"

// Report is the single outcome of a System.Run. It serializes from
// exactly one code path (MarshalJSON, which stamps ReportSchema), so
// the /status recent ring, StreamReport and archived results all emit
// the same bytes for the same report.
type Report struct {
	// Mode echoes the observation's engine selection.
	Mode Mode `json:"mode"`
	// Path is the dispatch route taken: PathClean, PathMissing or
	// PathReconciled.
	Path string `json:"path"`
	// Epoch is the baseline epoch detection ran against.
	Epoch uint64 `json:"epoch"`
	// EpochLag is how many epochs the window trailed the baseline
	// (non-zero only on the reconciled path).
	EpochLag uint64 `json:"epochLag,omitempty"`

	// Full is the Algorithm 1 result (nil when ModeSliced, or on the
	// missing path where Partial holds the full-FCM outcome).
	Full *Result `json:"-"`
	// Partial is the reachable-switch restricted result (missing path
	// only).
	Partial *PartialResult `json:"-"`
	// Sliced is the per-switch localization outcome (nil when
	// ModeFull).
	Sliced *SlicedOutcome `json:"-"`
	// MaskedRows lists the rule rows masked on the reconciled path.
	MaskedRows []int `json:"maskedRows,omitempty"`
	// Missing echoes the observation's missing switches.
	Missing []SwitchID `json:"missing,omitempty"`

	// Anomalous is the combined verdict of every engine that ran.
	Anomalous bool `json:"anomalous"`
	// Index is the full-FCM anomaly index (from Full or Partial).
	Index float64 `json:"anomalyIndex"`
	// SlicedIndex is the maximum per-switch anomaly index.
	SlicedIndex float64 `json:"slicedIndex"`
	// Suspects is the sliced localization, strongest suspect first.
	Suspects []SwitchID `json:"suspects"`
	// Localization is the active-probe culprit report (nil unless the
	// observation carried a LocalizeConfig and the verdict was
	// anomalous).
	Localization *Localization `json:"localization,omitempty"`
	// Timings carries the per-stage wall times.
	Timings RunTimings `json:"timings"`
}

// MarshalJSON serializes the report with its schema version stamped
// in, clamping infinite anomaly indices (a zero median error with a
// non-zero max yields +Inf, which JSON cannot carry) the same way the
// RunEvent ring does. The dense engine payloads (Full, Partial,
// Sliced) stay out of the wire format: they carry O(rules) vectors.
func (r Report) MarshalJSON() ([]byte, error) {
	return r.AppendJSON(nil)
}

// AppendJSON appends the report's canonical wire encoding — the same
// bytes MarshalJSON produces, schema stamp and all — to dst and
// returns the extended buffer. It is the allocation-free serialization
// path for hot consumers (the /status recent ring, StreamReport
// publishers, experiment digests): hand it a recycled buffer and keep
// the returned slice for the next report. Only the rare Localization
// payload falls back to encoding/json.
func (r *Report) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"schema":"`...)
	dst = append(dst, ReportSchema...)
	dst = append(dst, `","mode":`...)
	dst = appendJSONString(dst, r.Mode.String())
	dst = append(dst, `,"path":`...)
	dst = appendJSONString(dst, r.Path)
	dst = append(dst, `,"epoch":`...)
	dst = strconv.AppendUint(dst, r.Epoch, 10)
	if r.EpochLag != 0 {
		dst = append(dst, `,"epochLag":`...)
		dst = strconv.AppendUint(dst, r.EpochLag, 10)
	}
	if len(r.MaskedRows) > 0 {
		dst = append(dst, `,"maskedRows":[`...)
		for i, v := range r.MaskedRows {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
		dst = append(dst, ']')
	}
	if len(r.Missing) > 0 {
		dst = append(dst, `,"missing":[`...)
		for i, sw := range r.Missing {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(sw), 10)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"anomalous":`...)
	dst = strconv.AppendBool(dst, r.Anomalous)
	dst = append(dst, `,"anomalyIndex":`...)
	dst = appendJSONFloat(dst, finiteIndex(r.Index))
	dst = append(dst, `,"slicedIndex":`...)
	dst = appendJSONFloat(dst, finiteIndex(r.SlicedIndex))
	// Suspects carries no omitempty: nil means "sliced stage did not
	// run" (null), empty means "ran, nobody suspect" ([]).
	dst = append(dst, `,"suspects":`...)
	if r.Suspects == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, sw := range r.Suspects {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(sw), 10)
		}
		dst = append(dst, ']')
	}
	if r.Localization != nil {
		dst = append(dst, `,"localization":`...)
		b, err := json.Marshal(r.Localization)
		if err != nil {
			return nil, err
		}
		dst = append(dst, b...)
	}
	dst = append(dst, `,"timings":{"fullNs":`...)
	dst = strconv.AppendInt(dst, int64(r.Timings.Full), 10)
	dst = append(dst, `,"slicedNs":`...)
	dst = strconv.AppendInt(dst, int64(r.Timings.Sliced), 10)
	dst = append(dst, `,"localizeNs":`...)
	dst = strconv.AppendInt(dst, int64(r.Timings.Localize), 10)
	dst = append(dst, `,"totalNs":`...)
	dst = strconv.AppendInt(dst, int64(r.Timings.Total), 10)
	dst = append(dst, "}}"...)
	return dst, nil
}

// appendJSONString appends s as a JSON string. The fast path covers
// the printable-ASCII strings every report field actually carries;
// anything needing escapes takes encoding/json's exact path (HTML
// escaping included) so the bytes never diverge from json.Marshal.
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, _ := json.Marshal(s)
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json encodes a
// float64: shortest round-trip form, scientific notation outside
// [1e-6, 1e21) with the exponent's leading zero stripped. The caller
// clamps infinities first.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// RunEvent is the compact verdict record System pushes into its recent
// ring after every Run — the telemetry stream behind focesd's /status
// "recent" view. Infinite anomaly indices are clamped to
// math.MaxFloat64 so the event always JSON-encodes.
type RunEvent struct {
	Path        string     `json:"path"`
	Epoch       uint64     `json:"epoch"`
	Anomalous   bool       `json:"anomalous"`
	Index       float64    `json:"anomalyIndex"`
	SlicedIndex float64    `json:"slicedIndex"`
	Suspects    []SwitchID `json:"suspects"`
	// Localized is true when the run's active-probe localization named
	// a culprit at confidence.
	Localized bool  `json:"localized,omitempty"`
	ElapsedNS int64 `json:"elapsedNs"`
}

// Event compresses the report into its recent-ring record — the one
// code path behind both the ring snapshot and focesd's /status view.
func (r *Report) Event() RunEvent {
	return RunEvent{
		Path:        r.Path,
		Epoch:       r.Epoch,
		Anomalous:   r.Anomalous,
		Index:       finiteIndex(r.Index),
		SlicedIndex: finiteIndex(r.SlicedIndex),
		Suspects:    r.Suspects,
		Localized:   r.Localization != nil && r.Localization.Localized,
		ElapsedNS:   r.Timings.Total.Nanoseconds(),
	}
}

// defaultRecentRuns is the capacity of the recent-verdict ring.
const defaultRecentRuns = 64

// Run executes one detection window. It validates the observation,
// picks the dispatch path (clean / missing / reconciled — see
// Observation), runs the engines obs.Mode selects, and aggregates
// everything into one Report.
//
//	rep, err := sys.Run(foces.Observation{
//		Counters: poll.Deltas,
//		RunOptions: foces.RunOptions{
//			Missing: poll.Missing,
//			Epoch:   windowEpoch, // oldest straddled epoch, or sys.Epoch()
//		},
//	})
//
// Run is the supported entry point; the Detect* methods are deprecated
// wrappers over it.
func (s *System) Run(obs Observation) (Report, error) {
	s.baselineMu.RLock()
	defer s.baselineMu.RUnlock()
	return s.runLocked(obs, nil)
}

// SlicedRunner is the Algorithm 2 execution surface a Run needs: clean
// and masked sliced detection over a full counter vector. It is
// satisfied by *core.SlicedDetector (the local engine) and by the
// cluster coordinator, which fans the per-slice work across detector
// nodes and merges partial verdicts through the same
// core.MergeSliceResults the local engine uses.
type SlicedRunner interface {
	DetectWithOptions(y []float64, opts DetectOptions) (SlicedOutcome, error)
	DetectMasked(y []float64, masked []int) (SlicedOutcome, error)
}

// RunWith executes one detection window like Run but delegates the
// sliced (Algorithm 2) stage to the given runner — the cluster entry
// point. The full (Algorithm 1) stage and the missing-switch path
// always run locally: the full engine lives with the baseline, and the
// missing path re-gathers rows against collector state only this
// process holds. A nil runner is exactly Run.
func (s *System) RunWith(obs Observation, sliced SlicedRunner) (Report, error) {
	s.baselineMu.RLock()
	defer s.baselineMu.RUnlock()
	return s.runLocked(obs, sliced)
}

// runLocked is Run's body; the caller holds baselineMu's read side. A
// nil runner selects the local sliced engine.
func (s *System) runLocked(obs Observation, runner SlicedRunner) (Report, error) {
	start := time.Now()
	// Counter vectors assembled from obs.Counters are recycled once the
	// engines (which copy what they keep) are done with them.
	var pooledY []float64
	defer func() { s.putVector(pooledY) }()
	rep := Report{Mode: obs.Mode, Epoch: s.Epoch()}
	if obs.Epoch > rep.Epoch {
		return Report{}, fmt.Errorf("foces: observation epoch %d is ahead of baseline epoch %d", obs.Epoch, rep.Epoch)
	}
	opts := obs.Options
	if opts == (DetectOptions{}) {
		opts = s.opts
	}
	runFull := obs.Mode == ModeAuto || obs.Mode == ModeFull
	runSliced := obs.Mode == ModeAuto || obs.Mode == ModeSliced
	if runner == nil {
		runner = s.sliced
	}

	switch {
	case obs.Missing != nil:
		rep.Path = PathMissing
		rep.Missing = obs.Missing
		if obs.Vector != nil {
			return Report{}, fmt.Errorf("foces: the missing-switch path re-gathers rows per sub-system and needs Observation.Counters, not Vector")
		}
		if obs.Counters == nil {
			return Report{}, fmt.Errorf("foces: observation carries no counters (set Counters)")
		}
		if runFull {
			t0 := time.Now()
			pr, err := core.DetectWithMissing(s.fcm, obs.Counters, obs.Missing, opts)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Full = time.Since(t0)
			rep.Partial = &pr
			rep.Index = pr.Result.Index
			rep.Anomalous = rep.Anomalous || pr.Result.Anomalous
		}
		if runSliced {
			t0 := time.Now()
			so, err := core.DetectSlicedWithMissing(s.fcm, s.slices, obs.Counters, obs.Missing, opts)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Sliced = time.Since(t0)
			rep.Sliced = &so
		}

	case obs.Epoch < rep.Epoch:
		rep.Path = PathReconciled
		rep.EpochLag = rep.Epoch - obs.Epoch
		y, pooled, err := s.observationVector(obs)
		if err != nil {
			return Report{}, err
		}
		if pooled {
			pooledY = y
		}
		// A window snapshotted before rule additions is legitimately
		// short: the new rows are masked anyway, so zero-pad rather
		// than reject. (The clean path never pads — a short vector
		// there means a stale caller and must error.)
		if space := s.fcm.NumRules(); len(y) < space {
			padded := make([]float64, space)
			copy(padded, y)
			y = padded
		}
		rep.MaskedRows = s.AffectedSince(obs.Epoch)
		if runFull {
			d, err := s.fullDetector()
			if err != nil {
				return Report{}, err
			}
			t0 := time.Now()
			res, err := d.DetectMasked(y, rep.MaskedRows)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Full = time.Since(t0)
			rep.Full = &res
			rep.Index = res.Index
			rep.Anomalous = rep.Anomalous || res.Anomalous
		}
		if runSliced {
			t0 := time.Now()
			so, err := runner.DetectMasked(y, rep.MaskedRows)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Sliced = time.Since(t0)
			rep.Sliced = &so
		}

	default:
		rep.Path = PathClean
		y, pooled, err := s.observationVector(obs)
		if err != nil {
			return Report{}, err
		}
		if pooled {
			pooledY = y
		}
		if runFull {
			d, err := s.fullDetector()
			if err != nil {
				return Report{}, err
			}
			t0 := time.Now()
			res, err := d.DetectWithOptions(y, opts)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Full = time.Since(t0)
			rep.Full = &res
			rep.Index = res.Index
			rep.Anomalous = rep.Anomalous || res.Anomalous
		}
		if runSliced {
			t0 := time.Now()
			so, err := runner.DetectWithOptions(y, opts)
			if err != nil {
				return Report{}, err
			}
			rep.Timings.Sliced = time.Since(t0)
			rep.Sliced = &so
		}
	}

	if rep.Sliced != nil {
		rep.SlicedIndex = rep.Sliced.MaxIndex()
		rep.Suspects = rep.Sliced.Suspects
		rep.Anomalous = rep.Anomalous || rep.Sliced.Anomalous
	}
	s.maybeLocalize(obs, &rep)
	rep.Timings.Total = time.Since(start)
	s.recordRun(&rep)
	return rep, nil
}

// RunBatch executes a batch of observation windows against the same
// baseline in one call — the multi-tenant / replayed-window entry
// point. Windows on the clean path that run the full engine (ModeAuto
// or ModeFull, no missing switches, current epoch) share one batched
// Algorithm-1 multi-RHS solve per distinct option set
// (Detector.DetectBatch), which amortizes the triangular-factor memory
// traffic across the batch; every other window simply dispatches
// through Run. Reports come back in input order and each matches what
// a standalone Run of that window would produce — batching never
// changes a verdict, an index or a report field other than Timings
// (batched windows report their amortized share of the shared full
// stage). Any window error fails the whole batch, identifying the
// window. Migration from a Run loop is mechanical: collect the windows
// and switch the call; there is nothing to deprecate and no behavior
// to re-tune.
func (s *System) RunBatch(obs []Observation) ([]Report, error) {
	if len(obs) == 0 {
		return nil, nil
	}
	s.baselineMu.RLock()
	defer s.baselineMu.RUnlock()
	epoch := s.Epoch()
	// Per-call scratch (group tables, vector index, full-stage results)
	// is recycled across calls; only the returned reports slice is
	// allocated. Pooled counter vectors are released with it.
	sc := s.getBatchScratch(len(obs))
	defer s.putBatchScratch(sc)
	// Pass 1: gather the batchable clean-path windows, grouped by their
	// resolved options (ZeroTol defaults are per-window, applied inside
	// DetectBatchWithOptions exactly as DetectWithOptions would). The
	// group table is a linear-scanned slice: real batches carry one or
	// two distinct option sets, and the steady-state single-group case
	// must not pay a map allocation per call.
	for i, o := range obs {
		if o.Missing != nil || o.Epoch != epoch || (o.Mode != ModeAuto && o.Mode != ModeFull) {
			continue
		}
		y, pooled, err := s.observationVector(o)
		if err != nil {
			return nil, fmt.Errorf("foces: batch window %d: %w", i, err)
		}
		if pooled {
			sc.pooled = append(sc.pooled, y)
		}
		opts := o.Options
		if opts == (DetectOptions{}) {
			opts = s.opts
		}
		g := sc.group(opts)
		g.idxs = append(g.idxs, i)
		g.ys = append(g.ys, y)
		sc.batchable[i] = true
		sc.vectors[i] = y
	}
	// Shared full-engine stage: one multi-RHS solve per option group.
	if len(sc.groups) > 0 {
		d, err := s.fullDetector()
		if err != nil {
			return nil, err
		}
		for k := range sc.groups {
			g := &sc.groups[k]
			t0 := time.Now()
			results, err := d.DetectBatchWithOptions(g.ys, g.opts)
			if err != nil {
				return nil, fmt.Errorf("foces: batch window %d: %w", g.idxs[0], err)
			}
			share := time.Since(t0) / time.Duration(len(g.idxs))
			for k, i := range g.idxs {
				sc.fullRes[i] = results[k]
				sc.fullDur[i] = share
			}
		}
	}
	// Pass 2, in input order (so the recent-verdict ring and telemetry
	// see the windows in the order the caller supplied them): assemble
	// batched reports, run the sliced stage per window, and dispatch
	// everything else through Run.
	reports := make([]Report, len(obs))
	for i, o := range obs {
		if !sc.batchable[i] {
			rep, err := s.runLocked(o, nil) // already under the read lock
			if err != nil {
				return nil, fmt.Errorf("foces: batch window %d: %w", i, err)
			}
			reports[i] = rep
			continue
		}
		start := time.Now()
		rep := Report{Mode: o.Mode, Epoch: epoch, Path: PathClean}
		res := sc.fullRes[i]
		rep.Timings.Full = sc.fullDur[i]
		rep.Full = &res
		rep.Index = res.Index
		rep.Anomalous = res.Anomalous
		if o.Mode == ModeAuto {
			opts := o.Options
			if opts == (DetectOptions{}) {
				opts = s.opts
			}
			t0 := time.Now()
			so, err := s.sliced.DetectWithOptions(sc.vectors[i], opts)
			if err != nil {
				return nil, fmt.Errorf("foces: batch window %d: %w", i, err)
			}
			rep.Timings.Sliced = time.Since(t0)
			rep.Sliced = &so
			rep.SlicedIndex = so.MaxIndex()
			rep.Suspects = so.Suspects
			rep.Anomalous = rep.Anomalous || so.Anomalous
		}
		s.maybeLocalize(o, &rep)
		rep.Timings.Total = sc.fullDur[i] + time.Since(start)
		s.recordRun(&rep)
		reports[i] = rep
	}
	return reports, nil
}

// optGroup is one distinct option set's slice of a batch.
type optGroup struct {
	opts DetectOptions
	idxs []int
	ys   [][]float64
}

// batchScratch is RunBatch's recycled per-call working set.
type batchScratch struct {
	groups    []optGroup
	batchable []bool
	vectors   [][]float64
	fullRes   []Result
	fullDur   []time.Duration
	pooled    [][]float64 // counter vectors to release after the call
}

// group finds or claims the group for an option set, reusing retired
// entries' index/vector capacity.
func (sc *batchScratch) group(opts DetectOptions) *optGroup {
	for k := range sc.groups {
		if sc.groups[k].opts == opts {
			return &sc.groups[k]
		}
	}
	if cap(sc.groups) > len(sc.groups) {
		sc.groups = sc.groups[:len(sc.groups)+1]
	} else {
		sc.groups = append(sc.groups, optGroup{})
	}
	g := &sc.groups[len(sc.groups)-1]
	g.opts = opts
	g.idxs = g.idxs[:0]
	g.ys = g.ys[:0]
	return g
}

// getBatchScratch pops (or builds) a scratch sized for n windows.
func (s *System) getBatchScratch(n int) *batchScratch {
	s.scratchMu.Lock()
	var sc *batchScratch
	if k := len(s.batchFree); k > 0 {
		sc = s.batchFree[k-1]
		s.batchFree[k-1] = nil
		s.batchFree = s.batchFree[:k-1]
	}
	s.scratchMu.Unlock()
	if sc == nil {
		sc = &batchScratch{}
	}
	if cap(sc.batchable) < n {
		sc.batchable = make([]bool, n)
		sc.vectors = make([][]float64, n)
		sc.fullRes = make([]Result, n)
		sc.fullDur = make([]time.Duration, n)
	} else {
		sc.batchable = sc.batchable[:n]
		clear(sc.batchable)
		sc.vectors = sc.vectors[:n]
		clear(sc.vectors)
		sc.fullRes = sc.fullRes[:n]
		clear(sc.fullRes)
		sc.fullDur = sc.fullDur[:n]
		clear(sc.fullDur)
	}
	sc.groups = sc.groups[:0]
	sc.pooled = sc.pooled[:0]
	return sc
}

// putBatchScratch releases the call's pooled counter vectors and
// returns the scratch to the free list.
func (s *System) putBatchScratch(sc *batchScratch) {
	for i, y := range sc.pooled {
		s.putVector(y)
		sc.pooled[i] = nil
	}
	sc.pooled = sc.pooled[:0]
	s.scratchMu.Lock()
	if len(s.batchFree) < 4 {
		s.batchFree = append(s.batchFree, sc)
	}
	s.scratchMu.Unlock()
}

// observationVector resolves the dense counter vector from an
// observation, erroring when neither or both sources are set. Vectors
// assembled from Counters come from the system's recycle list; pooled
// reports whether the caller must hand the vector back through
// putVector once the engines are done with it (caller-supplied Vectors
// are never recycled — the system does not own them).
func (s *System) observationVector(obs Observation) (y []float64, pooled bool, err error) {
	switch {
	case obs.Vector != nil && obs.Counters != nil:
		return nil, false, fmt.Errorf("foces: observation sets both Vector and Counters; provide exactly one")
	case obs.Vector != nil:
		return obs.Vector, false, nil
	case obs.Counters != nil:
		space := s.fcm.NumRules()
		for id := range obs.Counters {
			if id < 0 || id >= space {
				return nil, false, fmt.Errorf("foces: counter for rule %d outside the baseline's %d-rule space (snapshot from a different rule generation?)", id, space)
			}
		}
		return s.fcm.CounterVectorInto(s.getVector(), obs.Counters), true, nil
	}
	return nil, false, fmt.Errorf("foces: observation carries no counters (set Counters or Vector)")
}

// maxPooledVectors caps the counter-vector free list; beyond it,
// releases fall through to the garbage collector.
const maxPooledVectors = 32

// getVector pops a recycled counter vector (nil when the list is
// empty; CounterVectorInto allocates in that case).
func (s *System) getVector() []float64 {
	s.scratchMu.Lock()
	defer s.scratchMu.Unlock()
	if n := len(s.vecFree); n > 0 {
		v := s.vecFree[n-1]
		s.vecFree[n-1] = nil
		s.vecFree = s.vecFree[:n-1]
		return v
	}
	return nil
}

// putVector returns a counter vector to the free list. Safe on nil.
func (s *System) putVector(v []float64) {
	if v == nil {
		return
	}
	s.scratchMu.Lock()
	if len(s.vecFree) < maxPooledVectors {
		s.vecFree = append(s.vecFree, v)
	}
	s.scratchMu.Unlock()
}

// pathTel is one dispatch path's label-resolved system children.
type pathTel struct {
	seconds   *telemetry.Histogram
	anomalous *telemetry.Counter
	clean     *telemetry.Counter
}

// sysRecorder holds every system-level metric child resolved at
// EnableTelemetry time, so recordRun touches only atomics — no label
// joins or registry lookups on the per-Run path.
type sysRecorder struct {
	clean      pathTel
	missing    pathTel
	reconciled pathTel
	epochLag   *telemetry.Histogram
	maskedRows *telemetry.Histogram
}

func newSysRecorder(m *telemetry.SystemMetrics) *sysRecorder {
	resolve := func(path string) pathTel {
		return pathTel{
			seconds:   m.RunSeconds.With(path),
			anomalous: m.Runs.With(path, core.VerdictAnomalous),
			clean:     m.Runs.With(path, core.VerdictClean),
		}
	}
	return &sysRecorder{
		clean:      resolve(PathClean),
		missing:    resolve(PathMissing),
		reconciled: resolve(PathReconciled),
		epochLag:   m.EpochLag,
		maskedRows: m.MaskedRows,
	}
}

// recordRun mirrors a completed Run into the system telemetry families
// and the recent-verdict ring.
func (s *System) recordRun(rep *Report) {
	if r := s.sysRec; r != nil {
		pt := &r.clean
		switch rep.Path {
		case PathMissing:
			pt = &r.missing
		case PathReconciled:
			pt = &r.reconciled
		}
		pt.seconds.Observe(rep.Timings.Total.Seconds())
		if rep.Anomalous {
			pt.anomalous.Inc()
		} else {
			pt.clean.Inc()
		}
		if rep.Path == PathReconciled {
			r.epochLag.Observe(float64(rep.EpochLag))
			r.maskedRows.Observe(float64(len(rep.MaskedRows)))
		}
	}
	s.events.Push(rep.Event())
}

// finiteIndex clamps +Inf anomaly indices so RunEvent always
// JSON-encodes.
func finiteIndex(v float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	return v
}

// probeRecorder holds the active-probe metric children resolved at
// EnableTelemetry time, mirroring sysRecorder: recordLocalization
// touches only atomics.
type probeRecorder struct {
	probeClean  *telemetry.Counter
	probeFailed *telemetry.Counter
	probeError  *telemetry.Counter
	localized   *telemetry.Counter
	unresolved  *telemetry.Counter
	perLoc      *telemetry.Histogram
	seconds     *telemetry.Histogram
	suspects    *telemetry.Histogram
	confidence  *telemetry.Histogram
}

func newProbeRecorder(m *telemetry.ProbeMetrics) *probeRecorder {
	return &probeRecorder{
		probeClean:  m.Probes.With("clean"),
		probeFailed: m.Probes.With("failed"),
		probeError:  m.Probes.With("error"),
		localized:   m.Localizations.With("localized"),
		unresolved:  m.Localizations.With("unresolved"),
		perLoc:      m.ProbesPerLocalization,
		seconds:     m.LocalizeSeconds,
		suspects:    m.SuspectRules,
		confidence:  m.Confidence,
	}
}

// recordLocalization mirrors a completed localization into the
// foces_probe_* telemetry family.
func (s *System) recordLocalization(loc *Localization) {
	r := s.probeRec
	if r == nil {
		return
	}
	r.probeClean.Add(uint64(loc.CleanProbes))
	r.probeFailed.Add(uint64(loc.FailedProbes))
	r.probeError.Add(uint64(loc.ErrorProbes))
	if loc.Localized {
		r.localized.Inc()
	} else {
		r.unresolved.Inc()
	}
	r.perLoc.Observe(float64(loc.ProbesUsed))
	r.seconds.Observe(loc.Elapsed.Seconds())
	r.suspects.Observe(float64(loc.SuspectRules))
	if top, ok := loc.TopCulprit(); ok {
		r.confidence.Observe(top.Confidence)
	}
}

// telWiring is one registry's set of metric families, cached so
// EnableTelemetry can switch a System between registries (e.g. a no-op
// and a live one in an overhead measurement) without re-registering.
type telWiring struct {
	det   *telemetry.DetectionMetrics
	ch    *telemetry.ChurnMetrics
	sys   *sysRecorder
	probe *probeRecorder
}

// EnableTelemetry registers the detection, churn and system metric
// families on reg and wires every engine the system owns (including
// engines rebuilt by future churn epochs) to record into them. It also
// arms the recent-verdict ring behind RecentRuns. Call before
// detection traffic starts; calling again with a registry this system
// has already seen reuses its families, so switching wirings is cheap
// and panic-free.
//
// Collector metrics are wired separately
// (telemetry.NewCollectorMetrics + RobustCollector.SetTelemetry): the
// collection plane is owned by the embedding application, not by
// System.
func (s *System) EnableTelemetry(reg *telemetry.Registry) {
	w := s.wirings[reg]
	if w == nil {
		w = &telWiring{
			det:   telemetry.NewDetectionMetrics(reg),
			ch:    telemetry.NewChurnMetrics(reg),
			sys:   newSysRecorder(telemetry.NewSystemMetrics(reg)),
			probe: newProbeRecorder(telemetry.NewProbeMetrics(reg)),
		}
		if s.wirings == nil {
			s.wirings = make(map[*telemetry.Registry]*telWiring)
		}
		s.wirings[reg] = w
	}
	s.detTel, s.churnTel, s.sysRec, s.probeRec = w.det, w.ch, w.sys, w.probe
	if s.events == nil {
		s.events = telemetry.NewRing[RunEvent](defaultRecentRuns)
	}
	s.churnMgr.SetTelemetry(s.detTel, s.churnTel)
}

// RecentRuns returns the most recent Run verdicts, oldest first. Empty
// until EnableTelemetry arms the ring.
func (s *System) RecentRuns() []RunEvent { return s.events.Snapshot() }

// TelemetryRegistry is the metric registry EnableTelemetry wires a
// System to. Its Handler method serves Prometheus text-exposition
// format 0.0.4, WriteText streams the same exposition to a
// bufio.Writer, and Gather snapshots every family for programmatic
// inspection. Re-exported here so applications outside this module can
// construct one (the implementation lives in an internal package).
type TelemetryRegistry = telemetry.Registry

// MetricsSnapshot is one metric family as returned by
// TelemetryRegistry.Gather.
type MetricsSnapshot = telemetry.FamilySnapshot

// NewTelemetryRegistry returns an empty live metric registry, ready
// for System.EnableTelemetry and for mounting its Handler.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.New() }

// NewNopTelemetryRegistry returns a no-op registry: wiring a System to
// it keeps instrumentation structurally in place while every metric
// update short-circuits. Useful for overhead measurements and for
// disabling telemetry without branching application code.
func NewNopTelemetryRegistry() *TelemetryRegistry { return telemetry.NewNop() }
