package foces_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"foces"
)

// The Report wire format is consumed by focesd's /status recent ring,
// StreamReport payloads and archived experiment results — all through
// the one Report.MarshalJSON code path. This golden test pins the
// bytes: a change here is a wire-format change and must come with a
// ReportSchema bump when a field changes meaning or shape.
func TestReportMarshalGolden(t *testing.T) {
	rep := foces.Report{
		Mode:        foces.ModeAuto,
		Path:        foces.PathReconciled,
		Epoch:       7,
		EpochLag:    2,
		MaskedRows:  []int{3, 4},
		Missing:     []foces.SwitchID{9},
		Anomalous:   true,
		Index:       12.5,
		SlicedIndex: 6.25,
		Suspects:    []foces.SwitchID{2, 5},
		Localization: &foces.Localization{
			Outcome: foces.ProbeOutcome{
				Localized: true,
				Culprits: []foces.ProbeCulprit{
					{RuleID: 41, Switch: 2, Confidence: 0.875, Probes: 1},
				},
				ProbesUsed:      3,
				ProbeBudget:     8,
				SuspectSwitches: []foces.SwitchID{2, 5},
				SuspectRules:    24,
				Exonerated:      11,
				CleanProbes:     2,
				FailedProbes:    1,
				Elapsed:         1500 * time.Microsecond,
			},
		},
		Timings: foces.RunTimings{
			Full:     2 * time.Millisecond,
			Sliced:   1 * time.Millisecond,
			Localize: 1500 * time.Microsecond,
			Total:    5 * time.Millisecond,
		},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"foces/report/v1",` +
		`"mode":"auto","path":"reconciled","epoch":7,"epochLag":2,` +
		`"maskedRows":[3,4],"missing":[9],` +
		`"anomalous":true,"anomalyIndex":12.5,"slicedIndex":6.25,` +
		`"suspects":[2,5],` +
		`"localization":{"localized":true,` +
		`"culprits":[{"ruleId":41,"switch":2,"confidence":0.875,"probes":1}],` +
		`"probesUsed":3,"probeBudget":8,"suspectSwitches":[2,5],` +
		`"suspectRules":24,"exonerated":11,` +
		`"cleanProbes":2,"failedProbes":1,"errorProbes":0,` +
		`"elapsedNs":1500000},` +
		`"timings":{"fullNs":2000000,"slicedNs":1000000,"localizeNs":1500000,"totalNs":5000000}}`
	if string(got) != want {
		t.Fatalf("Report wire format drifted (bump ReportSchema if intentional)\n got: %s\nwant: %s", got, want)
	}
}

// A zero median error with a non-zero max yields AI = +Inf; the one
// serialization path must clamp it, exactly as the RunEvent ring does.
func TestReportMarshalClampsInfiniteIndex(t *testing.T) {
	rep := foces.Report{Path: foces.PathClean, Index: math.Inf(1), SlicedIndex: math.Inf(1)}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("infinite index must clamp, not fail: %v", err)
	}
	if !strings.Contains(string(b), `"schema":"foces/report/v1"`) {
		t.Fatalf("schema missing: %s", b)
	}
}

// Report.Event is the single compression point behind the recent ring:
// what RecentRuns returns must be byte-identical to Event() of the
// report the same Run handed back.
func TestRunEventSingleCodePath(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	sys.EnableTelemetry(foces.NewTelemetryRegistry())
	rng := rand.New(rand.NewSource(21))
	y, err := sys.ObserveCounters(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(foces.Observation{Vector: y})
	if err != nil {
		t.Fatal(err)
	}
	events := sys.RecentRuns()
	if len(events) == 0 {
		t.Fatal("armed ring recorded nothing")
	}
	fromRing, err := json.Marshal(events[len(events)-1])
	if err != nil {
		t.Fatal(err)
	}
	fromReport, err := json.Marshal(rep.Event())
	if err != nil {
		t.Fatal(err)
	}
	if string(fromRing) != string(fromReport) {
		t.Fatalf("ring and report serialize differently:\nring:   %s\nreport: %s", fromRing, fromReport)
	}
}

// A StreamReport carries the same Report type, so its report payload
// serializes through the same MarshalJSON (schema stamped and all).
func TestStreamReportSharesReportWireFormat(t *testing.T) {
	sr := foces.StreamReport{Report: foces.Report{Path: foces.PathClean, Epoch: 3}, Window: 9}
	b, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(sr.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), string(direct)) {
		t.Fatalf("StreamReport does not embed the canonical report bytes:\nstream: %s\nreport: %s", b, direct)
	}
}
