package main

import (
	"strings"
	"testing"
)

func TestRunAllTopologies(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Stanford", "FatTree(4)", "BCube(1,4)", "DCell(1,4)", "650", "240", "380"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleTopologyDestMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "dest", "-topo", "fattree4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dest-aggregate") {
		t.Errorf("mode missing from header: %s", out.String())
	}
	if strings.Contains(out.String(), "Stanford") {
		t.Error("single-topology run printed other topologies")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("bogus mode must error")
	}
	if err := run([]string{"-topo", "bogus"}, &out); err == nil {
		t.Fatal("bogus topology must error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag must error")
	}
}
