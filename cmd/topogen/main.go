// Command topogen prints the Table I topology inventory: for each
// evaluation topology, the number of switches, hosts, logical flows and
// installed rules under the selected rule policy.
//
// Usage:
//
//	topogen [-mode pair|dest] [-topo name]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"foces/internal/controller"
	"foces/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	mode := fs.String("mode", "pair", "rule policy: pair (per host pair) or dest (per destination)")
	only := fs.String("topo", "", "single topology name (default: all four evaluation topologies)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cfg := experiment.Config{Mode: policy}
	var rows []experiment.TopologyRow
	if *only == "" {
		rows, err = experiment.TableI(cfg)
		if err != nil {
			return err
		}
	} else {
		c := cfg
		c.Topology = *only
		env, err := experiment.NewEnv(c)
		if err != nil {
			return err
		}
		rows = []experiment.TopologyRow{{
			Name:     env.Topo.Name(),
			Switches: env.Topo.NumSwitches(),
			Hosts:    env.Topo.NumHosts(),
			Flows:    env.FCM.NumFlows(),
			Rules:    env.FCM.NumRules(),
		}}
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Name,
			fmt.Sprint(r.Switches),
			fmt.Sprint(r.Hosts),
			fmt.Sprint(r.Flows),
			fmt.Sprint(r.Rules),
		})
	}
	fmt.Fprintf(out, "Table I — topology inventory (mode=%v)\n", policy)
	fmt.Fprint(out, experiment.FormatTable(
		[]string{"topology", "# switches", "# hosts", "# flows", "# rules"}, table))
	return nil
}

func parseMode(s string) (controller.PolicyMode, error) {
	switch s {
	case "pair":
		return controller.PairExact, nil
	case "dest":
		return controller.DestAggregate, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want pair or dest)", s)
	}
}
