package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"foces"
)

func TestRunDetectsAndRecovers(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4",
		"-periods", "6",
		"-attack-at", "3",
		"-repair-at", "5",
		"-loss", "0",
		"-seed", "7",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ANOMALY") {
		t.Errorf("no anomaly detected in:\n%s", s)
	}
	if !strings.Contains(s, "compromising switch") || !strings.Contains(s, "repaired") {
		t.Errorf("attack lifecycle missing from:\n%s", s)
	}
}

func TestRunNoAttack(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topo", "fattree4", "-periods", "3", "-attack-at", "0", "-loss", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ANOMALY") {
		t.Errorf("false alarm without attack:\n%s", out.String())
	}
}

func TestRunWithKernelFlags(t *testing.T) {
	defer foces.SetKernelDefaults(foces.SetKernelDefaults(foces.KernelOptions{}))
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4", "-periods", "2", "-attack-at", "0", "-loss", "0",
		"-kernel-workers", "2", "-kernel-block", "32",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := foces.KernelDefaults()
	if got.Workers != 2 || got.BlockSize != 32 {
		t.Fatalf("kernel flags not applied: %+v", got)
	}
	if strings.Contains(out.String(), "ANOMALY") {
		t.Errorf("false alarm with tuned kernels:\n%s", out.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topo", "bogus"}, &out); err == nil {
		t.Fatal("bogus topology must error")
	}
	if err := run([]string{"-loss", "2"}, &out); err == nil {
		t.Fatal("bad loss must error")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestStatusServer(t *testing.T) {
	srv, err := startStatusServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Update(status{Period: 7, Anomalous: true, Index: 12.5})
	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Period != 7 || !st.Anomalous || st.Index != 12.5 {
		t.Fatalf("status = %+v", st)
	}
	if st.Suspects == nil {
		t.Fatal("suspects must encode as [], not null")
	}
	// Method guard.
	post, err := http.Post("http://"+srv.Addr()+"/status", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

func TestRunWithStatusAndBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4", "-periods", "2", "-attack-at", "0", "-loss", "0",
		"-http", "127.0.0.1:0", "-save-baseline", baseline,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "status: http://") {
		t.Errorf("status address missing:\n%s", out.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"version\"") {
		t.Error("baseline file malformed")
	}
	if _, _, _, _, err := foces.LoadBaseline(bytes.NewReader(data)); err != nil {
		t.Fatalf("baseline does not load: %v", err)
	}
}

func TestClampIndex(t *testing.T) {
	if clampIndex(math.Inf(1)) != 1e6 || clampIndex(2e7) != 1e6 || clampIndex(3) != 3 {
		t.Fatal("clamp wrong")
	}
}

// TestRunWithChurn drives live rule updates mid-run: updates must be
// absorbed incrementally, straddling windows must be reconciled (no
// false alarm without an attack), and the churn block must reach
// /status.
func TestRunWithChurn(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4",
		"-periods", "6",
		"-attack-at", "0",
		"-churn-every", "2",
		"-loss", "0",
		"-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "ANOMALY") {
		t.Errorf("rule churn read as forwarding anomaly:\n%s", s)
	}
	if !strings.Contains(s, "rule churn epoch 1") || !strings.Contains(s, "rule churn epoch 3") {
		t.Errorf("churn epochs missing from:\n%s", s)
	}
	if !strings.Contains(s, "straddle rule updates") {
		t.Errorf("no straddling window reconciled in:\n%s", s)
	}
}
