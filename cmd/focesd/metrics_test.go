package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter lets the test read focesd's output while run() is still
// writing it from another goroutine.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// extractAddr polls the daemon's output for a "<label>: http://ADDR/..."
// line until the deadline.
func extractAddr(t *testing.T, out *syncWriter, label string, done <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, label+": http://"); i >= 0 {
			rest := s[i+len(label+": http://"):]
			if j := strings.Index(rest, "/"); j >= 0 {
				return rest[:j]
			}
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before announcing %s endpoint: %v\n%s", label, err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatalf("no %s endpoint announced in:\n%s", label, out.String())
	return ""
}

// TestMetricsEndpointUnderLoad scrapes /metrics concurrently while the
// daemon runs through collection faults (-kill-at, -reset-at) and rule
// churn (-churn-every) — the telemetry hot paths must tolerate being
// read mid-detection (this test is the -race witness), and the
// exposition must stay well-formed and cover every subsystem family.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-topo", "fattree4",
			"-periods", "24",
			"-attack-at", "8",
			"-repair-at", "16",
			"-kill-at", "10",
			"-reset-at", "14",
			"-churn-every", "6",
			"-loss", "0",
			"-seed", "5",
			"-interval", "10ms",
			"-http", "127.0.0.1:0",
			"-metrics-addr", "127.0.0.1:0",
		}, out)
	}()
	metricsAddr := extractAddr(t, out, "metrics", done)
	statusAddr := extractAddr(t, out, "status", done)

	// Scrape from several goroutines for the whole run: the exposition
	// walks every family while detections, faults and churn mutate them.
	var (
		bodyMu   sync.Mutex
		lastBody string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + metricsAddr + "/metrics")
				if err != nil {
					return // server closed: run() finished
				}
				if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
					t.Errorf("content type %q lacks exposition version", ct)
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return
				}
				bodyMu.Lock()
				lastBody = string(b)
				bodyMu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Sample /status mid-run until the telemetry-event ring shows up.
	var recent []json.RawMessage
	for i := 0; i < 500 && len(recent) == 0; i++ {
		resp, err := http.Get("http://" + statusAddr + "/status")
		if err != nil {
			break
		}
		var st struct {
			Recent []json.RawMessage `json:"recent"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil {
			recent = st.Recent
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if len(recent) == 0 {
		t.Error("/status never exposed a non-empty recent-verdict ring")
	}
	bodyMu.Lock()
	body := lastBody
	bodyMu.Unlock()
	if body == "" {
		t.Fatal("no successful /metrics scrape")
	}
	for _, name := range []string{
		"foces_collector_poll_seconds",
		"foces_collector_requests_total",
		"foces_detector_detect_seconds",
		"foces_detector_verdicts_total",
		"foces_churn_apply_seconds",
		"foces_churn_epoch",
		"foces_system_runs_total",
		"foces_system_run_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Well-formedness: every line is a comment or a foces_ sample, and
	// histograms carry their implicit +Inf bucket.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !strings.HasPrefix(line, "# ") && !strings.HasPrefix(line, "foces_") {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	if !strings.Contains(body, `le="+Inf"`) {
		t.Error("no +Inf histogram bucket in exposition")
	}
}
