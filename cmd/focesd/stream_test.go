package main

import (
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// verdictTable extracts the per-period verdict table (header row
// included) from a focesd run's output, stopping at the trailing
// collection summary.
func verdictTable(t *testing.T, s string) []string {
	t.Helper()
	var rows []string
	in := false
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, "period") && strings.Contains(ln, "verdict") {
			in = true
		}
		if strings.HasPrefix(ln, "collection:") {
			break
		}
		if in {
			rows = append(rows, ln)
		}
	}
	if len(rows) < 2 {
		t.Fatalf("no verdict table found in:\n%s", s)
	}
	return rows
}

// TestRunStreamMatchesPolledTable is the daemon-level equivalence gate:
// the same topology, seed and fault/churn schedule must print the same
// per-period verdict table whether windows are pulled (legacy loop) or
// pushed through the streaming pipeline.
func TestRunStreamMatchesPolledTable(t *testing.T) {
	args := []string{
		"-topo", "fattree4",
		"-periods", "8",
		"-attack-at", "3",
		"-repair-at", "6",
		"-churn-every", "4",
		"-loss", "0",
		"-seed", "7",
	}
	var polled strings.Builder
	if err := run(args, &polled); err != nil {
		t.Fatal(err)
	}
	var streamed strings.Builder
	if err := run(append([]string{"-stream"}, args...), &streamed); err != nil {
		t.Fatal(err)
	}
	want := verdictTable(t, polled.String())
	got := verdictTable(t, streamed.String())
	if len(got) != len(want) {
		t.Fatalf("table rows: streamed %d, polled %d\nstreamed:\n%s\npolled:\n%s",
			len(got), len(want), streamed.String(), polled.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("table row %d diverged:\nstreamed: %q\npolled:   %q", i, got[i], want[i])
		}
	}
	if !strings.Contains(streamed.String(), "stream: windows=") {
		t.Errorf("stream summary missing from:\n%s", streamed.String())
	}
}

// TestRunStreamWithSampler smoke-tests the full streaming mode with the
// adaptive sampler enabled: clean traffic must stay quiet and some
// switches must leave every-window sampling.
func TestRunStreamWithSampler(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-stream", "-sample",
		"-topo", "fattree4",
		"-periods", "10",
		"-attack-at", "0",
		"-loss", "0",
		"-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "ANOMALY") {
		t.Errorf("false alarm in sampled streaming mode:\n%s", s)
	}
	if !strings.Contains(s, "sampler: switches=") {
		t.Fatalf("sampler summary missing from:\n%s", s)
	}
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, "sampler:") && strings.Contains(ln, "backedOff=0") {
			t.Errorf("no switch backed off over a clean run: %s", ln)
		}
	}
}

// TestRunStreamGracefulShutdown sends SIGINT mid-run: the pump must
// stop, queued windows must drain, and run must return nil after a
// clean teardown (including the metrics server, under its deadline).
func TestRunStreamGracefulShutdown(t *testing.T) {
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-stream",
			"-topo", "fattree4",
			"-periods", "100000",
			"-interval", "10ms",
			"-attack-at", "0",
			"-loss", "0",
			"-metrics-addr", "127.0.0.1:0",
		}, &out)
	}()
	// Let the daemon bootstrap and stream a few windows first.
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted run returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("streaming daemon did not shut down after SIGINT")
	}
	s := out.String()
	if !strings.Contains(s, "interrupted: drained") || !strings.Contains(s, "shut down cleanly") {
		t.Fatalf("graceful-shutdown notice missing from:\n%s", s)
	}
}
