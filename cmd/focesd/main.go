// Command focesd runs a live FOCES detection loop against a simulated
// SDN: it bootstraps a topology, installs rules through the
// OpenFlow-like control channel, drives traffic, injects a forwarding
// anomaly partway through, and prints the anomaly index each detection
// period — the Fig. 7 functional test as an interactive demo, wired
// end-to-end through the statistics-collection glue.
//
// Statistics collection runs through the fault-tolerant
// collector.RobustCollector: switch counters accumulate as on real
// hardware and are differenced into per-period windows, polls carry
// per-request deadlines with retries, flapping switches are
// quarantined (and probed back in), and counter resets are detected
// instead of read as anomalies. The -kill-at / -reset-at flags inject
// those collection-plane faults mid-run.
//
// Detection runs through the unified foces.System.Run entry point:
// every period is described as one Observation (counter deltas, missing
// switches, the window's baseline epoch) and Run dispatches to the
// clean, missing or reconciled path. The -metrics-addr flag exposes the
// internal telemetry registry as a Prometheus /metrics endpoint plus
// the pprof profiling surface.
//
// Usage:
//
// The -stream flag switches from the caller-driven pull-poll loop to
// the continuous streaming mode: a pump fetches raw cumulative
// snapshots and pushes them into a collector.WindowAssembler, whose
// completed windows flow through foces.System.Serve; -sample adds the
// adaptive per-switch sampler (stable switches are polled less often,
// suspects are tightened back immediately). SIGINT/SIGTERM triggers a
// graceful drain of the streaming queue before exit.
//
// Usage:
//
//	focesd [-topo bcube14] [-periods 36] [-attack-at 12] [-repair-at 24]
//	       [-loss 0.05] [-threshold 4.5] [-volume 1000] [-seed 1]
//	       [-consecutive 2] [-skip-verify] [-http 127.0.0.1:8080]
//	       [-metrics-addr 127.0.0.1:9090] [-save-baseline baseline.json]
//	       [-interval 0] [-kill-at 0] [-kill-switch -1] [-reset-at 0]
//	       [-reset-switch -1] [-churn-every 0] [-kernel-workers 0]
//	       [-kernel-block 0] [-stream] [-sample]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"foces"
	"foces/internal/cluster"
	"foces/internal/collector"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/experiment"
	"foces/internal/flowtable"
	"foces/internal/header"
	"foces/internal/openflow"
	"foces/internal/persist"
	"foces/internal/telemetry"
	"foces/internal/topo"
	"foces/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focesd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("focesd", flag.ContinueOnError)
	topoName := fs.String("topo", "bcube14", "topology name")
	periods := fs.Int("periods", 36, "number of detection periods")
	attackAt := fs.Int("attack-at", 12, "period at which a random rule is compromised (0 = never)")
	repairAt := fs.Int("repair-at", 24, "period at which the rule is repaired")
	loss := fs.Float64("loss", 0.05, "per-link packet loss probability")
	threshold := fs.Float64("threshold", 4.5, "anomaly-index threshold T")
	volume := fs.Uint64("volume", 1000, "packets per flow per period")
	seed := fs.Int64("seed", 1, "random seed")
	consecutive := fs.Int("consecutive", 2, "periods above threshold before the debounced alarm fires")
	skipVerify := fs.Bool("skip-verify", false, "skip intent verification at startup")
	httpAddr := fs.String("http", "", "serve GET /status on this address (e.g. 127.0.0.1:8080)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus GET /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	saveBaseline := fs.String("save-baseline", "", "write the detection baseline (topology+rules) to this file")
	killAt := fs.Int("kill-at", 0, "period at which a switch's control channel dies (0 = never)")
	killSwitch := fs.Int("kill-switch", -1, "switch to kill at -kill-at (-1 = auto-pick)")
	resetAt := fs.Int("reset-at", 0, "period at which a switch reboots and zeroes its counters (0 = never)")
	resetSwitch := fs.Int("reset-switch", -1, "switch to reset at -reset-at (-1 = auto-pick)")
	churnEvery := fs.Int("churn-every", 0, "apply a rule update (remove one rule, add one) every N periods, mid-window (0 = never)")
	interval := fs.Duration("interval", 0, "sleep between detection periods, like a real collection interval (0 = run flat out)")
	kernelWorkers := fs.Int("kernel-workers", 0, "worker count for the parallel baseline-preparation kernels (0 = GOMAXPROCS)")
	kernelBlock := fs.Int("kernel-block", 0, "block size for the blocked Cholesky factorization (0 = built-in default)")
	solver := fs.String("solver", "auto", "normal-equations backend: auto (density-based), sparse (force sparse Cholesky), dense (force dense)")
	stream := fs.Bool("stream", false, "run the continuous streaming mode (push-driven windows through System.Serve) instead of the pull-poll loop")
	sample := fs.Bool("sample", false, "with -stream: enable the adaptive per-switch sampler (back off stable switches, tighten suspects)")
	localize := fs.Bool("localize", false, "on anomalous windows, run active-probe localization and report the accused rule (/status localization block, foces_probe_* metrics)")
	role := fs.String("role", "standalone", "process role: standalone (detect in-process), coordinator (shard Algorithm 2 across -peers), detector (serve slice shards on -listen)")
	peers := fs.String("peers", "", "coordinator role: comma-separated detector addresses (host:port,host:port,...)")
	listen := fs.String("listen", "127.0.0.1:0", "detector role: TCP address to serve shards on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "standalone", "coordinator", "detector":
	default:
		return fmt.Errorf("bad -role %q: want standalone, coordinator or detector", *role)
	}
	if *role == "coordinator" && *peers == "" {
		return fmt.Errorf("-role coordinator needs -peers")
	}
	if *role != "standalone" && *stream {
		return fmt.Errorf("-stream supports -role standalone only")
	}
	var sparseMode foces.SparseMode
	switch *solver {
	case "auto":
		sparseMode = foces.SparseAuto
	case "sparse":
		sparseMode = foces.SparseAlways
	case "dense":
		sparseMode = foces.SparseNever
	default:
		return fmt.Errorf("bad -solver %q: want auto, sparse or dense", *solver)
	}
	if *kernelWorkers != 0 || *kernelBlock != 0 || sparseMode != foces.SparseAuto {
		foces.SetKernelDefaults(foces.KernelOptions{Workers: *kernelWorkers, BlockSize: *kernelBlock, Sparse: sparseMode})
	}

	if *role == "detector" {
		// A detector node carries no topology or baseline of its own:
		// everything it detects with arrives over the wire from its
		// coordinator (snapshot or rank-one deltas, then windows).
		return runDetector(*listen, out)
	}

	t, err := topo.ByName(*topoName)
	if err != nil {
		return err
	}
	layout := header.FiveTuple()
	ctrl, err := controller.New(t, layout, controller.PairExact)
	if err != nil {
		return err
	}
	if err := ctrl.ComputeRules(); err != nil {
		return err
	}
	if !*skipVerify {
		rep, err := verify.Intent(t, layout, ctrl.Rules())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
		if !rep.OK() {
			return fmt.Errorf("intent verification failed; refusing to use it as detection baseline")
		}
	}

	if *saveBaseline != "" {
		fh, err := os.Create(*saveBaseline)
		if err != nil {
			return err
		}
		err = persist.Save(fh, t, layout, ctrl.Rules())
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "baseline saved to %s\n", *saveBaseline)
	}

	var statusSrv *statusServer
	if *httpAddr != "" {
		var err error
		statusSrv, err = startStatusServer(*httpAddr)
		if err != nil {
			return err
		}
		defer statusSrv.Close()
		fmt.Fprintf(out, "status: http://%s/status\n", statusSrv.Addr())
	}

	network := dataplane.NewNetwork(t, layout)
	if err := network.SetLinkLoss(*loss); err != nil {
		return err
	}

	// Wire the control plane: agents per switch, rule installation via
	// FlowMods, statistics collection via the fault-tolerant collector.
	harness, err := collector.NewHarness(network)
	if err != nil {
		return err
	}
	defer harness.Close()
	if err := collector.InstallRules(harness.Clients, ctrl.Rules()); err != nil {
		return err
	}
	robust := collector.NewRobust(harness.Clients, collector.RobustConfig{
		Deadline:        time.Second,
		Attempts:        3,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		QuarantineAfter: 2,
		ProbeEvery:      3,
		Seed:            *seed,
	})
	// Counters accumulate on the switches as on real hardware; the
	// priming poll establishes every switch's delta baseline so period
	// one already produces a clean one-period window.
	if err := robust.Prime(context.Background()); err != nil {
		return err
	}

	// Resolve fault-injection targets.
	sws := t.Switches()
	pickSwitch := func(flagVal, fallbackIdx int) topo.SwitchID {
		if flagVal >= 0 {
			return topo.SwitchID(flagVal)
		}
		return sws[fallbackIdx%len(sws)].ID
	}
	killTarget := pickSwitch(*killSwitch, len(sws)/3)
	resetTarget := pickSwitch(*resetSwitch, (2*len(sws))/3)
	if *killAt > 0 && *resetAt > 0 && killTarget == resetTarget {
		return fmt.Errorf("kill and reset target the same switch %d", killTarget)
	}

	// The System owns the epoch-versioned baseline: FCM, slices and the
	// prepared engines, with the threshold baked in at construction.
	// Steady-state periods pay only triangular solves; a rule update
	// (-churn-every) re-traces affected sources and repairs slice
	// engines incrementally instead of rebuilding.
	sys, err := foces.NewSystemFromParts(t, layout, ctrl, network, foces.DetectOptions{Threshold: *threshold})
	if err != nil {
		return err
	}
	f := sys.FCM()

	// Telemetry is always wired — the registry is atomics-only and
	// near-free when nobody scrapes; -metrics-addr decides whether it is
	// exposed over HTTP.
	reg := telemetry.New()
	sys.EnableTelemetry(reg)
	robust.SetTelemetry(telemetry.NewCollectorMetrics(reg))
	runtimeTel := telemetry.NewRuntimeMetrics(reg)
	runtimeSampler := telemetry.NewRuntimeSampler(runtimeTel)
	var metricsSrv *metricsServer
	if *metricsAddr != "" {
		metricsSrv, err = startMetricsServer(*metricsAddr, reg, runtimeSampler)
		if err != nil {
			return err
		}
		defer metricsSrv.Close()
		fmt.Fprintf(out, "metrics: http://%s/metrics\n", metricsSrv.Addr())
	}

	// In the coordinator role Algorithm 2 is sharded across remote
	// detector nodes: every period's sliced stage goes through the
	// cluster coordinator (with local fallback when no node is live),
	// while window assembly, the full-FCM stage and churn absorption
	// stay in this process.
	runObs := sys.Run
	var coord *cluster.Coordinator
	if *role == "coordinator" {
		var addrs []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord, err = cluster.New(sys.ChurnManager(), core.Options{Threshold: *threshold},
			cluster.Config{Peers: addrs}, telemetry.NewClusterMetrics(reg))
		if err != nil {
			return err
		}
		defer coord.Close()
		runObs = func(obs foces.Observation) (foces.Report, error) { return sys.RunWith(obs, coord) }
		cs := coord.Status()
		fmt.Fprintf(out, "cluster: coordinating %d detector nodes, %d shards\n", cs.Live, cs.Shards)
	}

	fmt.Fprintf(out, "focesd: %s, %d flows, %d rules, %d slices (%d workers), loss=%s, T=%.1f\n",
		t.Name(), f.NumFlows(), f.NumRules(), len(sys.Slices()), sys.SlicedDetector().Workers(), experiment.FormatPct(*loss), *threshold)

	rng := rand.New(rand.NewSource(*seed))
	tm := dataplane.UniformTraffic(t, *volume)
	monitor := core.NewMonitor(core.MonitorConfig{Threshold: *threshold, Consecutive: *consecutive})

	// -localize opts every window into active-probe diagnosis: clean
	// verdicts cost nothing, anomalous ones spend a probe budget to name
	// the compromised rule.
	var locCfg *foces.LocalizeConfig
	if *localize {
		locCfg = &foces.LocalizeConfig{Seed: *seed}
	}

	if *stream {
		return runStream(streamEnv{
			out: out, t: t, layout: layout, ctrl: ctrl, network: network,
			harness: harness, robust: robust, sys: sys, reg: reg,
			statusSrv: statusSrv, metricsSrv: metricsSrv,
			runtimeTel: runtimeTel, runtimeSampler: runtimeSampler,
			rng: rng, tm: tm, monitor: monitor,
			periods: *periods, attackAt: *attackAt, repairAt: *repairAt,
			killAt: *killAt, killTarget: killTarget,
			resetAt: *resetAt, resetTarget: resetTarget,
			churnEvery: *churnEvery, interval: *interval, sample: *sample,
			localize: locCfg,
		})
	}

	var active *dataplane.Attack
	var quarantines uint64

	headers := []string{"period", "attack", "AI(baseline)", "verdict", "alarm", "AI(sliced)", "suspects"}
	var rows [][]string
	for p := 1; p <= *periods; p++ {
		if *attackAt > 0 && p == *attackAt && active == nil {
			atk, err := dataplane.RandomAttack(rng, network, dataplane.AttackPortSwap)
			if err != nil {
				return err
			}
			if err := atk.Apply(network); err != nil {
				return err
			}
			active = &atk
			fmt.Fprintf(out, ">> period %d: compromising switch %d (rule %d -> %v)\n",
				p, atk.Switch, atk.RuleID, atk.NewAction)
		}
		if active != nil && p == *repairAt {
			if err := active.Revert(network); err != nil {
				return err
			}
			fmt.Fprintf(out, ">> period %d: rule %d on switch %d repaired\n", p, active.RuleID, active.Switch)
			active = nil
		}
		if *killAt > 0 && p == *killAt {
			client, ok := harness.Clients[killTarget]
			if !ok {
				return fmt.Errorf("no control channel to kill on switch %d", killTarget)
			}
			_ = client.Close()
			fmt.Fprintf(out, ">> period %d: switch %d control channel died\n", p, killTarget)
		}
		if *resetAt > 0 && p == *resetAt {
			tbl, err := network.Table(resetTarget)
			if err != nil {
				return err
			}
			tbl.ResetCounters()
			fmt.Fprintf(out, ">> period %d: switch %d rebooted (counters zeroed)\n", p, resetTarget)
		}

		if *churnEvery > 0 && p%*churnEvery == 0 {
			// Run half the period's traffic first so the update lands
			// mid-window: the poll below sees counters that mix two rule
			// generations — exactly the straddling case the epoch-tagged
			// windows reconcile.
			if _, err := network.Run(rng, tm); err != nil {
				return err
			}
			events, err := injectChurn(rng, ctrl, layout, t, harness.Clients)
			if err != nil {
				return err
			}
			// The switches were already patched via FlowMods above, so
			// only the detection baseline needs to absorb the events.
			u, err := sys.ObserveUpdate(events)
			if err != nil {
				return err
			}
			robust.SetEpoch(sys.Epoch())
			f = sys.FCM()
			fmt.Fprintf(out, ">> period %d: rule churn epoch %d (%d events): retraced %d sources, slices reused/updated/refactored %d/%d/%d in %s\n",
				p, u.Epoch, len(u.Events), u.Retraced, u.SlicesReused, u.SlicesUpdated, u.SlicesRefactored, u.Elapsed.Round(time.Microsecond))
		}

		// Counters keep accumulating; the robust collector differences
		// them into this period's window.
		if _, err := network.Run(rng, tm); err != nil {
			return err
		}
		poll, err := robust.Poll(context.Background())
		if err != nil {
			return err
		}
		counters, missing := poll.Deltas, poll.Missing
		if len(poll.Resets) > 0 {
			fmt.Fprintf(out, ">> period %d: counter reset detected on switches %v; their window is treated as missing\n", p, poll.Resets)
		}
		if len(poll.Reinstated) > 0 {
			fmt.Fprintf(out, ">> period %d: switches %v reinstated from quarantine\n", p, poll.Reinstated)
		}
		met := robust.Metrics()
		if met.Quarantines > quarantines {
			fmt.Fprintf(out, ">> period %d: quarantined switches: %v\n", p, robust.Quarantined())
			quarantines = met.Quarantines
		}
		// One Observation describes the whole window: Run picks the
		// clean, missing or reconciled path. The window's baseline epoch
		// is the oldest epoch any switch window straddles (the current
		// epoch when none do).
		if len(missing) == 0 {
			missing = nil // nil means "every switch reported" to Run
		}
		winEpoch := sys.Epoch()
		for _, e := range poll.Straddled {
			if e < winEpoch {
				winEpoch = e
			}
		}
		rep, err := runObs(foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Missing: missing, Epoch: winEpoch, Localize: locCfg}})
		if err != nil {
			return err
		}
		if loc := rep.Localization; loc != nil {
			if top, ok := loc.TopCulprit(); ok {
				fmt.Fprintf(out, ">> period %d: localization accused rule %d on switch %d (confidence %.2f, %d/%d probes)\n",
					p, top.RuleID, top.Switch, top.Confidence, loc.ProbesUsed, loc.ProbeBudget)
			} else if loc.Error != "" {
				fmt.Fprintf(out, ">> period %d: localization failed: %s\n", p, loc.Error)
			}
		}
		switch {
		case rep.Partial != nil:
			fmt.Fprintf(out, ">> period %d: %d switches missing, detecting on %d of %d rules\n",
				p, len(missing), len(rep.Partial.PresentRows), f.NumRules())
		case len(poll.Straddled) > 0:
			// One or more switch windows span a rule update: their
			// counters mix two rule generations. Run masked the rows
			// changed since the oldest straddled baseline epoch instead
			// of reading the mixture as a forwarding anomaly.
			fmt.Fprintf(out, ">> period %d: %d switch windows straddle rule updates since epoch %d; masking %d rule rows\n",
				p, len(poll.Straddled), winEpoch, len(rep.MaskedRows))
		}
		var res core.Result
		if rep.Partial != nil {
			res = rep.Partial.Result
		} else {
			res = *rep.Full
		}
		sliced := *rep.Sliced
		verdict := "ok"
		if res.Anomalous {
			verdict = "ANOMALY"
		}
		mv := monitor.Feed(res.Index)
		alarm := ""
		if mv.Alert {
			alarm = "ALARM"
		}
		if statusSrv != nil {
			var cv *cluster.Status
			if coord != nil {
				cs := coord.Status()
				cv = &cs
			}
			statusSrv.Update(status{
				Period:           p,
				AttackActive:     active != nil,
				Cluster:          cv,
				Index:            clampIndex(res.Index),
				Anomalous:        res.Anomalous,
				Alarm:            mv.Alert,
				SlicedIndex:      clampIndex(sliced.MaxIndex()),
				Suspects:         sliced.Suspects,
				Localization:     rep.Localization,
				MissingSwitches:  len(missing),
				StraddledWindows: len(poll.Straddled),
				Collection:       collectionStatus(robust, poll),
				Churn:            churnStatus(sys.ChurnStats()),
				Runtime:          runtimeStatus(runtimeSampler, runtimeTel),
				Recent:           sys.RecentRuns(),
			})
		}
		suspects := ""
		for i, sw := range sliced.Suspects {
			if i > 0 {
				suspects += ","
			}
			suspects += fmt.Sprint(sw)
			if i == 4 {
				suspects += ",..."
				break
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(p),
			fmt.Sprint(active != nil),
			experiment.FormatIndex(res.Index),
			verdict,
			alarm,
			experiment.FormatIndex(sliced.MaxIndex()),
			suspects,
		})
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	fmt.Fprint(out, experiment.FormatTable(headers, rows))
	m := robust.Metrics()
	fmt.Fprintf(out, "collection: periods=%d requests=%d retries=%d timeouts=%d failures=%d quarantines=%d reinstatements=%d resets=%d\n",
		m.Periods, m.Requests, m.Retries, m.Timeouts, m.Failures, m.Quarantines, m.Reinstatements, m.Resets)
	return nil
}

// runDetector serves slice shards for a remote coordinator until
// SIGINT/SIGTERM: baselines arrive as CSR snapshots or rank-one deltas,
// windows as framed sub-vectors, verdicts go back per shard.
func runDetector(listen string, out io.Writer) error {
	node, err := cluster.NewNode(listen, cluster.NodeConfig{})
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Fprintf(out, "detector: serving shards on %s (ctrl-c to stop)\n", node.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	windows := node.WindowsProcessed()
	snaps, deltas := node.SyncCounts()
	fmt.Fprintf(out, "detector: shutting down after %d windows (%d snapshot syncs, %d delta syncs)\n",
		windows, snaps, deltas)
	return nil
}

// injectChurn applies one live rule update end to end: remove a random
// live rule and add a fresh src-pinned drop rule, mutating the
// controller's intent AND the switches (via FlowMods on the control
// channel), and returns the event batch for the churn manager.
func injectChurn(rng *rand.Rand, ctrl *controller.Controller, layout *header.Layout, t *topo.Topology, clients map[topo.SwitchID]*openflow.Client) ([]controller.RuleChange, error) {
	live := ctrl.Rules()
	victim := live[rng.Intn(len(live))]
	if _, err := ctrl.RemoveRule(victim.ID); err != nil {
		return nil, err
	}
	if err := clients[victim.Switch].DeleteRule(victim.ID); err != nil {
		return nil, fmt.Errorf("delete rule %d on switch %d: %w", victim.ID, victim.Switch, err)
	}
	hosts := t.Hosts()
	h := hosts[rng.Intn(len(hosts))]
	match, err := layout.MatchExact(layout.Wildcard(), header.FieldSrcIP, h.IP)
	if err != nil {
		return nil, err
	}
	sws := t.Switches()
	sw := sws[rng.Intn(len(sws))].ID
	added, err := ctrl.AddRule(sw, 500, match, flowtable.Action{Type: flowtable.ActionDrop})
	if err != nil {
		return nil, err
	}
	if err := clients[sw].InstallRule(added); err != nil {
		return nil, fmt.Errorf("install rule %d on switch %d: %w", added.ID, sw, err)
	}
	return []controller.RuleChange{
		{Op: controller.RuleRemoved, Rule: victim},
		{Op: controller.RuleAdded, Rule: added},
	}, nil
}

// clampIndex bounds +Inf anomaly indices for JSON encoding.
func clampIndex(v float64) float64 {
	if math.IsInf(v, 1) || v > 1e6 {
		return 1e6
	}
	return v
}
