package main

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"

	"foces"
	"foces/internal/churn"
	"foces/internal/cluster"
	"foces/internal/collector"
	"foces/internal/telemetry"
	"foces/internal/topo"
)

// runtimeView is the /status view of Go runtime health: live heap,
// cumulative GC pause and cycle totals, and the allocation rate seen
// between the last two samples — enough to spot the detection loop
// turning into a GC treadmill without attaching a profiler.
type runtimeView struct {
	HeapLiveBytes  uint64  `json:"heapLiveBytes"`
	GCPauseMsTotal float64 `json:"gcPauseMsTotal"`
	GCCycles       uint64  `json:"gcCycles"`
	AllocsPerSec   float64 `json:"allocsPerSec"`
}

// runtimeStatus samples the runtime and snapshots the gauges for
// /status. Nil inputs (telemetry disabled) yield nil, which the JSON
// encoder omits.
func runtimeStatus(s *telemetry.RuntimeSampler, m *telemetry.RuntimeMetrics) *runtimeView {
	if s == nil || m == nil {
		return nil
	}
	s.Sample()
	return &runtimeView{
		HeapLiveBytes:  uint64(m.HeapLiveBytes.Value()),
		GCPauseMsTotal: m.GCPauseSecondsTotal.Value() * 1000,
		GCCycles:       uint64(m.GCCyclesTotal.Value()),
		AllocsPerSec:   m.AllocsPerSecond.Value(),
	}
}

// collection is the /status view of the fault-tolerant collection
// plane: cumulative operational counters plus the current quarantine
// set and the latest poll's latency.
type collection struct {
	Requests       uint64          `json:"requests"`
	Retries        uint64          `json:"retries"`
	Timeouts       uint64          `json:"timeouts"`
	Failures       uint64          `json:"failures"`
	Probes         uint64          `json:"probes"`
	Quarantines    uint64          `json:"quarantines"`
	Reinstatements uint64          `json:"reinstatements"`
	Resets         uint64          `json:"resets"`
	Quarantined    []topo.SwitchID `json:"quarantined"`
	LastPollMs     float64         `json:"lastPollMs"`
}

// collectionStatus snapshots a robust collector for /status.
func collectionStatus(rc *collector.RobustCollector, poll collector.PollResult) collection {
	m := rc.Metrics()
	q := rc.Quarantined()
	if q == nil {
		q = []topo.SwitchID{}
	}
	return collection{
		Requests:       m.Requests,
		Retries:        m.Retries,
		Timeouts:       m.Timeouts,
		Failures:       m.Failures,
		Probes:         m.Probes,
		Quarantines:    m.Quarantines,
		Reinstatements: m.Reinstatements,
		Resets:         m.Resets,
		Quarantined:    q,
		LastPollMs:     float64(poll.Elapsed.Microseconds()) / 1000,
	}
}

// churnView is the /status view of the epoch-versioned rule-churn
// subsystem: current epoch plus cumulative incremental-maintenance
// work, so an operator can see updates being absorbed without full
// rebuilds.
type churnView struct {
	Epoch            uint64  `json:"epoch"`
	Updates          int     `json:"updates"`
	Events           int     `json:"events"`
	Retraced         int     `json:"retracedSources"`
	SlicesReused     int     `json:"slicesReused"`
	SlicesUpdated    int     `json:"slicesUpdated"`
	SlicesRefactored int     `json:"slicesRefactored"`
	FullRebuilds     int     `json:"fullRebuilds"`
	LastUpdateMs     float64 `json:"lastUpdateMs"`
}

// churnStatus snapshots a churn manager for /status.
func churnStatus(st churn.Stats) churnView {
	return churnView{
		Epoch:            st.Epoch,
		Updates:          st.Updates,
		Events:           st.Events,
		Retraced:         st.Retraced,
		SlicesReused:     st.SlicesReused,
		SlicesUpdated:    st.SlicesUpdated,
		SlicesRefactored: st.SlicesRefactored,
		FullRebuilds:     st.FullRebuilds,
		LastUpdateMs:     float64(st.LastElapsed.Microseconds()) / 1000,
	}
}

// streamView is the /status view of the streaming ingestion plane:
// bounded-queue state, window/drop accounting, sampler state and the
// end-to-end ingest-to-verdict latency tail.
type streamView struct {
	Windows        uint64  `json:"windows"`
	Pushes         uint64  `json:"pushes"`
	Updates        uint64  `json:"updates"`
	QueueDepth     int     `json:"queueDepth"`
	Coalesced      uint64  `json:"coalesced"`
	DroppedUpdates uint64  `json:"droppedUpdates"`
	DroppedWindows uint64  `json:"droppedWindows"`
	LastWindow     uint64  `json:"lastWindow"`
	LastLagMs      float64 `json:"lastLagMs"`
	P99LatencyMs   float64 `json:"p99LatencyMs"`
	// Sampler is the adaptive sampler's state (zero-valued when the
	// sampler is disabled).
	Sampler collector.SamplerStats `json:"sampler"`
}

// streamStatus snapshots the streaming plane for /status.
func streamStatus(st collector.StreamStats, sampler *collector.AdaptiveSampler, lastWindow uint64, lastLag time.Duration, p99 time.Duration) streamView {
	v := streamView{
		Windows:        st.Windows,
		Pushes:         st.Pushes,
		Updates:        st.Updates,
		QueueDepth:     st.QueueDepth,
		Coalesced:      st.Coalesced,
		DroppedUpdates: st.DroppedUpdates,
		DroppedWindows: st.DroppedWindows,
		LastWindow:     lastWindow,
		LastLagMs:      float64(lastLag.Microseconds()) / 1000,
		P99LatencyMs:   float64(p99.Microseconds()) / 1000,
	}
	if sampler != nil {
		v.Sampler = sampler.Stats()
	}
	return v
}

// status is the JSON document served at /status.
type status struct {
	Period       int             `json:"period"`
	AttackActive bool            `json:"attackActive"`
	Index        float64         `json:"anomalyIndex"`
	Anomalous    bool            `json:"anomalous"`
	Alarm        bool            `json:"alarm"`
	SlicedIndex  float64         `json:"slicedIndex"`
	Suspects     []topo.SwitchID `json:"suspects"`
	// Localization is the latest anomalous window's active-probe
	// culprit report; nil without -localize or while the network is
	// clean.
	Localization     *foces.Localization `json:"localization,omitempty"`
	MissingSwitches  int                 `json:"missingSwitches"`
	StraddledWindows int                 `json:"straddledWindows"`
	Collection       collection          `json:"collection"`
	Churn            churnView           `json:"churn"`
	// Stream is the streaming ingestion plane's state; nil outside
	// -stream mode.
	Stream *streamView `json:"stream,omitempty"`
	// Cluster is the sharded-detection coordinator's state — live and
	// configured node counts, the degraded flag, per-peer shard
	// ownership, eviction/requeue totals; nil outside -role coordinator.
	Cluster *cluster.Status `json:"cluster,omitempty"`
	// Runtime is the Go runtime health block (heap, GC, allocation
	// rate); nil when telemetry is disabled.
	Runtime *runtimeView `json:"runtime,omitempty"`
	// Recent is the verdict ring rebuilt from the system's telemetry
	// events: the last N Run outcomes, oldest first.
	Recent []foces.RunEvent `json:"recent"`
}

// statusServer exposes the daemon's latest detection state over HTTP —
// the minimal operational surface a real deployment would scrape.
type statusServer struct {
	mu   sync.Mutex
	cur  status
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// startStatusServer listens on addr ("127.0.0.1:0" picks a free port)
// and serves GET /status.
func startStatusServer(addr string) (*statusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &statusServer{ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handle)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address.
func (s *statusServer) Addr() string { return s.ln.Addr().String() }

// Update publishes the latest period's state.
func (s *statusServer) Update(st status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur = st
}

// Close stops the server and waits for the serve goroutine.
func (s *statusServer) Close() {
	_ = s.srv.Close()
	<-s.done
}

func (s *statusServer) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.cur
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	// Suspects/Recent may be nil; emit [] for stable JSON.
	if st.Suspects == nil {
		st.Suspects = []topo.SwitchID{}
	}
	if st.Recent == nil {
		st.Recent = []foces.RunEvent{}
	}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
