package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"foces"
	"foces/internal/collector"
	"foces/internal/controller"
	"foces/internal/core"
	"foces/internal/dataplane"
	"foces/internal/experiment"
	"foces/internal/header"
	"foces/internal/telemetry"
	"foces/internal/topo"
)

// streamEnv carries the bootstrapped daemon state into the streaming
// mode: the same topology, control plane, system and telemetry the
// pull-poll loop uses, so the two modes differ only in how windows are
// formed and consumed.
type streamEnv struct {
	out        io.Writer
	t          *topo.Topology
	layout     *header.Layout
	ctrl       *controller.Controller
	network    *dataplane.Network
	harness    *collector.Harness
	robust     *collector.RobustCollector
	sys        *foces.System
	reg        *telemetry.Registry
	statusSrv  *statusServer
	metricsSrv *metricsServer

	// runtimeTel / runtimeSampler feed the /status runtime block (and
	// are shared with the /metrics scrape path).
	runtimeTel     *telemetry.RuntimeMetrics
	runtimeSampler *telemetry.RuntimeSampler
	rng            *rand.Rand
	tm             dataplane.TrafficMatrix
	monitor        *core.Monitor

	periods     int
	attackAt    int
	repairAt    int
	killAt      int
	killTarget  topo.SwitchID
	resetAt     int
	resetTarget topo.SwitchID
	churnEvery  int
	interval    time.Duration
	sample      bool
	localize    *foces.LocalizeConfig
}

// shutdownDeadline bounds the graceful teardown of the metrics server.
const shutdownDeadline = 2 * time.Second

// runStream is focesd's -stream mode: instead of the caller-driven
// for { Poll; Run } loop, a pump fetches raw cumulative snapshots
// (PollSnapshots) and pushes them into a WindowAssembler, whose
// completed windows flow through System.Serve continuously. SIGINT or
// SIGTERM triggers a graceful shutdown: the pump stops, the assembler
// flushes its pending window, Serve drains every remaining window, a
// final /status snapshot is published, and the metrics server stops
// under a deadline.
func runStream(env streamEnv) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sws := env.t.Switches()
	ids := make([]topo.SwitchID, len(sws))
	for i, sw := range sws {
		ids[i] = sw.ID
	}
	var sampler *collector.AdaptiveSampler
	if env.sample {
		sampler = collector.NewAdaptiveSampler(ids, collector.SamplerConfig{})
	}
	streamTel := telemetry.NewStreamMetrics(env.reg)
	asm := collector.NewWindowAssembler(ids, collector.StreamConfig{Sampler: sampler})
	asm.SetTelemetry(streamTel)
	asm.SetEpoch(env.sys.Epoch())

	// Serve drains independently of the pump's context so a shutdown
	// can flush queued windows; the watchdog below bounds the drain.
	serveCtx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	reports, err := env.sys.Serve(serveCtx, foces.StreamConfig{
		Windows:   asm.Windows(),
		Localize:  env.localize,
		Sampler:   sampler,
		Telemetry: streamTel,
	})
	if err != nil {
		return err
	}

	// Consumer: one goroutine turns StreamReports into table rows,
	// monitor feeds, latency samples and /status updates.
	type consumed struct {
		rows      [][]string
		latencies []time.Duration
		anomalies int
		errs      int
	}
	done := make(chan consumed, 1)
	go func() {
		var c consumed
		for sr := range reports {
			if sr.Err != nil {
				c.errs++
				fmt.Fprintf(env.out, ">> window %d: detection error: %v\n", sr.Window, sr.Err)
				continue
			}
			rep := sr.Report
			// Window 1 is the priming round (skipped by Serve); window
			// seq p+1 carries period p's traffic.
			period := int(sr.Window) - 1
			if sr.Latency > 0 {
				c.latencies = append(c.latencies, sr.Latency)
			}
			res := repResult(rep)
			if res.Anomalous {
				c.anomalies++
			}
			mv := env.monitor.Feed(res.Index)
			verdict := "ok"
			if res.Anomalous {
				verdict = "ANOMALY"
			}
			alarm := ""
			if mv.Alert {
				alarm = "ALARM"
			}
			var slicedIdx float64
			var suspects []topo.SwitchID
			if rep.Sliced != nil {
				slicedIdx = rep.Sliced.MaxIndex()
				suspects = rep.Sliced.Suspects
			}
			attackActive := env.attackAt > 0 && period >= env.attackAt &&
				(env.repairAt <= env.attackAt || period < env.repairAt)
			if env.statusSrv != nil {
				sv := streamStatus(asm.Stats(), sampler, sr.Window, sr.Latency, percentileDur(c.latencies, 0.99))
				env.statusSrv.Update(status{
					Period:           period,
					AttackActive:     attackActive,
					Index:            clampIndex(res.Index),
					Anomalous:        res.Anomalous,
					Alarm:            mv.Alert,
					SlicedIndex:      clampIndex(slicedIdx),
					Suspects:         suspects,
					Localization:     rep.Localization,
					MissingSwitches:  len(rep.Missing),
					StraddledWindows: 0,
					Collection:       collectionStatus(env.robust, collector.PollResult{}),
					Churn:            churnStatus(env.sys.ChurnStats()),
					Stream:           &sv,
					Runtime:          runtimeStatus(env.runtimeSampler, env.runtimeTel),
					Recent:           env.sys.RecentRuns(),
				})
			}
			c.rows = append(c.rows, []string{
				fmt.Sprint(period),
				fmt.Sprint(attackActive),
				experiment.FormatIndex(res.Index),
				verdict,
				alarm,
				experiment.FormatIndex(slicedIdx),
				formatSuspects(suspects),
			})
		}
		done <- c
	}()

	// Pump: round 0 primes every switch's delta baseline (its window is
	// all-missing and skipped by Serve), then one round per period with
	// the same fault/attack/churn schedule as the pull-poll loop.
	var active *dataplane.Attack
	pumpErr := func() error {
		if err := pumpRound(ctx, env.robust, asm); err != nil {
			return err
		}
		for p := 1; p <= env.periods; p++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if env.attackAt > 0 && p == env.attackAt && active == nil {
				atk, err := dataplane.RandomAttack(env.rng, env.network, dataplane.AttackPortSwap)
				if err != nil {
					return err
				}
				if err := atk.Apply(env.network); err != nil {
					return err
				}
				active = &atk
				fmt.Fprintf(env.out, ">> period %d: compromising switch %d (rule %d -> %v)\n",
					p, atk.Switch, atk.RuleID, atk.NewAction)
			}
			if active != nil && p == env.repairAt {
				if err := active.Revert(env.network); err != nil {
					return err
				}
				fmt.Fprintf(env.out, ">> period %d: rule %d on switch %d repaired\n", p, active.RuleID, active.Switch)
				active = nil
			}
			if env.killAt > 0 && p == env.killAt {
				client, ok := env.harness.Clients[env.killTarget]
				if !ok {
					return fmt.Errorf("no control channel to kill on switch %d", env.killTarget)
				}
				_ = client.Close()
				fmt.Fprintf(env.out, ">> period %d: switch %d control channel died\n", p, env.killTarget)
			}
			if env.resetAt > 0 && p == env.resetAt {
				tbl, err := env.network.Table(env.resetTarget)
				if err != nil {
					return err
				}
				tbl.ResetCounters()
				fmt.Fprintf(env.out, ">> period %d: switch %d rebooted (counters zeroed)\n", p, env.resetTarget)
			}
			if env.churnEvery > 0 && p%env.churnEvery == 0 {
				// Half the period's traffic first, so the update lands
				// mid-window and this period's streamed window straddles
				// the epoch — reconciled exactly like a polled one.
				if _, err := env.network.Run(env.rng, env.tm); err != nil {
					return err
				}
				events, err := injectChurn(env.rng, env.ctrl, env.layout, env.t, env.harness.Clients)
				if err != nil {
					return err
				}
				u, err := env.sys.ObserveUpdate(events)
				if err != nil {
					return err
				}
				asm.SetEpoch(env.sys.Epoch())
				fmt.Fprintf(env.out, ">> period %d: rule churn epoch %d (%d events)\n", p, u.Epoch, len(u.Events))
			}
			if _, err := env.network.Run(env.rng, env.tm); err != nil {
				return err
			}
			if err := pumpRound(ctx, env.robust, asm); err != nil {
				return err
			}
			if env.interval > 0 {
				time.Sleep(env.interval)
			}
		}
		return nil
	}()
	interrupted := pumpErr != nil && ctx.Err() != nil

	// Graceful drain: flush the pending window, close the stream, and
	// let Serve work through everything still queued. The watchdog
	// cancels Serve if the drain outlives the shutdown deadline.
	watchdog := time.AfterFunc(shutdownDeadline, cancelServe)
	asm.Close()
	c := <-done
	watchdog.Stop()

	fmt.Fprint(env.out, experiment.FormatTable(
		[]string{"period", "attack", "AI(baseline)", "verdict", "alarm", "AI(sliced)", "suspects"}, c.rows))
	st := asm.Stats()
	m := env.robust.Metrics()
	fmt.Fprintf(env.out, "collection: periods=%d requests=%d retries=%d timeouts=%d failures=%d quarantines=%d reinstatements=%d\n",
		m.Periods, m.Requests, m.Retries, m.Timeouts, m.Failures, m.Quarantines, m.Reinstatements)
	fmt.Fprintf(env.out, "stream: windows=%d pushes=%d updates=%d coalesced=%d droppedUpdates=%d droppedWindows=%d p99=%s\n",
		st.Windows, st.Pushes, st.Updates, st.Coalesced, st.DroppedUpdates, st.DroppedWindows,
		percentileDur(c.latencies, 0.99).Round(time.Microsecond))
	if sampler != nil {
		ss := sampler.Stats()
		fmt.Fprintf(env.out, "sampler: switches=%d backedOff=%d maxInterval=%d tightened=%d drifts=%d\n",
			ss.Switches, ss.BackedOff, ss.MaxInterval, ss.Tightened, ss.Drifts)
	}

	// Final /status snapshot, then stop the servers under a deadline.
	if env.statusSrv != nil {
		sv := streamStatus(st, sampler, st.Windows, 0, percentileDur(c.latencies, 0.99))
		env.statusSrv.Update(status{
			Period:     env.periods,
			Collection: collectionStatus(env.robust, collector.PollResult{}),
			Churn:      churnStatus(env.sys.ChurnStats()),
			Stream:     &sv,
			Runtime:    runtimeStatus(env.runtimeSampler, env.runtimeTel),
			Recent:     env.sys.RecentRuns(),
		})
	}
	if env.metricsSrv != nil {
		env.metricsSrv.Shutdown(shutdownDeadline)
	}
	if interrupted {
		fmt.Fprintf(env.out, "interrupted: drained %d windows, shut down cleanly\n", st.Windows)
		return nil
	}
	return pumpErr
}

// pumpRound runs one streaming fetch round: ask the assembler which
// switches its open window is waiting on, fetch their cumulative
// snapshots through the full fault machinery, and feed results back —
// failed switches lose their baseline (Forget) and are marked missing,
// skipped (quarantined) switches are marked missing, everything else
// is pushed.
func pumpRound(ctx context.Context, rc *collector.RobustCollector, asm *collector.WindowAssembler) error {
	due := asm.Due()
	snap, err := rc.PollSnapshots(ctx, due)
	if err != nil {
		return err
	}
	for _, sw := range snap.Failed {
		asm.Forget(sw)
	}
	for _, sw := range due {
		if counters, ok := snap.Snapshots[sw]; ok {
			if err := asm.Push(collector.Update{Switch: sw, Counters: counters}); err != nil {
				return err
			}
		}
	}
	asm.MarkMissing(snap.Failed...)
	asm.MarkMissing(snap.Skipped...)
	return nil
}

// repResult picks the full-FCM result out of a report, whichever path
// it took.
func repResult(rep foces.Report) core.Result {
	if rep.Partial != nil {
		return rep.Partial.Result
	}
	if rep.Full != nil {
		return *rep.Full
	}
	return core.Result{}
}

// formatSuspects renders the first few localization suspects.
func formatSuspects(suspects []topo.SwitchID) string {
	s := ""
	for i, sw := range suspects {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(sw)
		if i == 4 {
			s += ",..."
			break
		}
	}
	return s
}

// percentileDur returns the q-quantile of the samples (0 when empty).
func percentileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
