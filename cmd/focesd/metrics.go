package main

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"foces/internal/telemetry"
)

// metricsServer serves the Prometheus exposition and the pprof
// profiling surface on their own listener, separate from /status, so
// the operational scrape endpoint can be firewalled independently of
// the human-facing one.
type metricsServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// startMetricsServer listens on addr ("127.0.0.1:0" picks a free port)
// and serves GET /metrics plus the /debug/pprof handlers. The pprof
// handlers are mounted explicitly rather than via the net/http/pprof
// import side effect, so nothing leaks onto http.DefaultServeMux.
// When sampler is non-nil the foces_runtime_* gauges are refreshed on
// each scrape, so their cost (one ReadMemStats) is paid at scrape
// cadence rather than in the detection hot path.
func startMetricsServer(addr string, reg *telemetry.Registry, sampler *telemetry.RuntimeSampler) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	metricsHandler := reg.Handler()
	if sampler != nil {
		inner := metricsHandler
		metricsHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sampler.Sample()
			inner.ServeHTTP(w, r)
		})
	}
	mux.Handle("/metrics", metricsHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &metricsServer{ln: ln, done: make(chan struct{})}
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address.
func (s *metricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve goroutine.
func (s *metricsServer) Close() {
	_ = s.srv.Close()
	<-s.done
}

// Shutdown stops the server gracefully, letting in-flight scrapes
// finish for up to d before dropping lingering connections. Safe to
// follow with Close (which becomes a no-op).
func (s *metricsServer) Shutdown(d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
	}
	<-s.done
}
