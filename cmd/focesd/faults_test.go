package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe to read while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunSurvivesCollectionFaults is the acceptance scenario: one
// switch's control channel dies mid-run and another reboots, zeroing
// its counters. The daemon must keep detecting — the dead switch is
// quarantined, the reset period is treated as missing rather than an
// anomaly, nothing false-alarms — and the collection metrics must be
// visible on /status while the run is live.
func TestRunSurvivesCollectionFaults(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-topo", "fattree4",
			"-periods", "60",
			"-attack-at", "0",
			"-loss", "0",
			"-seed", "7",
			"-kill-at", "2",
			"-reset-at", "4",
			"-interval", "5ms",
			"-http", "127.0.0.1:0",
		}, &out)
	}()

	// Pick the status address off the daemon's own output.
	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("status address never printed:\n%s", out.String())
		}
		s := out.String()
		if i := strings.Index(s, "status: http://"); i >= 0 {
			line := s[i+len("status: "):]
			if j := strings.IndexByte(line, '\n'); j >= 0 {
				addr = line[:j]
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Scrape /status while the run is live until the quarantine and the
	// counter reset both show up in the collection metrics.
	sawQuarantine, sawReset := false, false
	for !(sawQuarantine && sawReset) && time.Now().Before(deadline) {
		resp, err := http.Get(addr)
		if err != nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		var st status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Collection.Quarantines >= 1 && len(st.Collection.Quarantined) >= 1 {
			sawQuarantine = true
		}
		if st.Collection.Resets >= 1 {
			sawReset = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawQuarantine || !sawReset {
		t.Errorf("collection metrics never surfaced on /status: quarantine=%v reset=%v", sawQuarantine, sawReset)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"control channel died",
		"quarantined switches:",
		"counter reset detected",
		"switches missing, detecting on",
		"collection: periods=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Neither the dead switch nor the reset may read as a forwarding
	// anomaly.
	if strings.Contains(s, "ANOMALY") || strings.Contains(s, "ALARM") {
		t.Errorf("collection fault raised a false alarm:\n%s", s)
	}
}

// TestRunDetectsAttackWhileDegraded: an actual forwarding anomaly must
// still be caught and localized while a quarantined switch keeps the
// collector degraded.
func TestRunDetectsAttackWhileDegraded(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4",
		"-periods", "10",
		"-attack-at", "6",
		"-repair-at", "9",
		"-kill-at", "3",
		"-loss", "0",
		"-seed", "7",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "quarantined switches:") {
		t.Errorf("kill never led to quarantine:\n%s", s)
	}
	if !strings.Contains(s, "ANOMALY") {
		t.Errorf("attack missed while collector degraded:\n%s", s)
	}
	if !strings.Contains(s, "ALARM") {
		t.Errorf("debounced alarm never fired:\n%s", s)
	}
}

func TestRunKillAndResetSameSwitch(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-topo", "fattree4", "-periods", "3", "-loss", "0",
		"-kill-at", "1", "-kill-switch", "4",
		"-reset-at", "2", "-reset-switch", "4",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "same switch") {
		t.Fatalf("conflicting fault targets must error, got %v", err)
	}
}
