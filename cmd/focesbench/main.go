// Command focesbench regenerates every table and figure of the FOCES
// evaluation (§VI): Table I and Figs 7-12. Each experiment prints the
// paper-style rows/series to stdout and, with -csv DIR, also writes a
// CSV per experiment.
//
// Usage:
//
//	focesbench -exp all                 # everything (slow)
//	focesbench -exp fig8 -runs 50       # one experiment, more samples
//	focesbench -exp fig12 -flows 240,480,960,1920,3840
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"foces/internal/analysis"
	"foces/internal/baseline"
	"foces/internal/controller"
	"foces/internal/experiment"
	"foces/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focesbench:", err)
		os.Exit(1)
	}
}

type options struct {
	exp    string
	runs   int
	seed   int64
	csvDir string
	flows  []int
	volume uint64
	topo   string
	check  bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("focesbench", flag.ContinueOnError)
	opts := options{}
	fs.StringVar(&opts.exp, "exp", "all", "experiment: all|table1|fig7|fig8|fig9|fig10|fig11|fig12|loc|coverage|overhead|monitor|churn|telemetry|kernels|stream|sparse|cluster|localize|alloc")
	fs.IntVar(&opts.runs, "runs", 0, "observations per point (0 = experiment default)")
	fs.Int64Var(&opts.seed, "seed", 1, "random seed")
	fs.StringVar(&opts.csvDir, "csv", "", "directory for CSV output (optional)")
	flowList := fs.String("flows", "", "comma-separated flow counts for fig12")
	fs.Uint64Var(&opts.volume, "volume", 1000, "packets per flow per interval")
	fs.StringVar(&opts.topo, "topo", "", "topology override for the kernels/sparse experiments")
	fs.BoolVar(&opts.check, "check", false, "gated experiments only: exit non-zero on equivalence failure or performance regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flowList != "" {
		for _, part := range strings.Split(*flowList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -flows entry %q: %w", part, err)
			}
			opts.flows = append(opts.flows, v)
		}
	}
	if opts.csvDir != "" {
		if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
			return err
		}
	}
	experiments := map[string]func(options, io.Writer) error{
		"table1":    runTableI,
		"fig7":      runFig7,
		"fig8":      runFig8,
		"fig9":      runFig9,
		"fig10":     runFig10, // fig10 and fig11 share the Slicing experiment
		"fig11":     runFig10,
		"fig12":     runFig12,
		"loc":       runLocalization, // extension: future work #1
		"coverage":  runCoverage,     // extension: future work #2
		"overhead":  runOverhead,     // §VII deployment-cost comparison
		"monitor":   runMonitor,      // extension: debounced-alarm study
		"churn":     runChurn,        // extension: incremental vs full-rebuild updates
		"telemetry": runTelemetry,    // hot-path cost of the metrics instrumentation
		"kernels":   runKernels,      // parallel blocked kernels vs serial reference
		"stream":    runStreamBench,  // streaming ingestion: equivalence, latency tail, load
		"sparse":    runSparse,       // sparse Cholesky vs dense: memory wall, equivalence
		"cluster":   runCluster,      // sharded multi-node detection: equivalence, failover, throughput
		"localize":  runLocalize,     // active-probe localization: culprit hit rate, probe budget
		"alloc":     runAlloc,        // zero-allocation steady state: allocs/window, GC pause share
	}
	// -check is a pass/fail regression gate; only the experiments that
	// define gate criteria honour it. Accepting it elsewhere would let a
	// CI pipeline "gate" on an experiment that can never fail.
	if opts.check {
		gated := []string{"alloc", "cluster", "kernels", "localize", "sparse", "stream"}
		ok := false
		for _, g := range gated {
			if opts.exp == g {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("-check is only supported for the gated experiments (%s); %q has no pass/fail gate",
				strings.Join(gated, ", "), opts.exp)
		}
	}
	if opts.exp == "all" {
		for _, name := range []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig12", "loc", "coverage", "overhead", "monitor", "churn", "telemetry", "kernels"} {
			if err := experiments[name](opts, out); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := experiments[opts.exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", opts.exp)
	}
	return fn(opts, out)
}

func baseConfig(opts options) experiment.Config {
	return experiment.Config{Seed: opts.seed, PacketsPerFlow: opts.volume}
}

func writeCSV(opts options, name string, headers []string, rows [][]string) error {
	if opts.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(opts.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteCSV(f, headers, rows)
}

func runTableI(opts options, out io.Writer) error {
	rows, err := experiment.TableI(baseConfig(opts))
	if err != nil {
		return err
	}
	headers := []string{"topology", "switches", "hosts", "flows", "rules"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, fmt.Sprint(r.Switches), fmt.Sprint(r.Hosts), fmt.Sprint(r.Flows), fmt.Sprint(r.Rules)})
	}
	fmt.Fprintln(out, "\n== Table I: topology inventory ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "table1", headers, cells)
}

func runFig7(opts options, out io.Writer) error {
	cfg := experiment.FunctionalConfig{Config: baseConfig(opts)}
	points, err := experiment.Functional(cfg)
	if err != nil {
		return err
	}
	headers := []string{"loss", "time_s", "anomaly_index", "attack_active"}
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			experiment.FormatPct(p.Loss),
			fmt.Sprint(p.TimeSec),
			experiment.FormatIndex(p.Index),
			fmt.Sprint(p.AttackActive),
		})
	}
	fmt.Fprintln(out, "\n== Fig 7: anomaly index timeline, BCube(1,4), attack in [60s,120s], T=4.5 ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "fig7", headers, cells)
}

func runFig8(opts options, out io.Writer) error {
	headers := []string{"topology", "loss", "auc", "tpr_at_T4.5", "fpr_at_T4.5"}
	var cells [][]string
	for _, name := range topo.EvaluationTopologies() {
		cfg := experiment.ROCConfig{Config: baseConfig(opts), Runs: opts.runs}
		cfg.Topology = name
		series, err := experiment.ROC(cfg)
		if err != nil {
			return err
		}
		for _, s := range series {
			// The operating point closest to the default threshold.
			var tpr, fpr float64
			best := 1e18
			for _, p := range s.Points {
				if d := abs(p.Threshold - 4.5); d < best {
					best, tpr, fpr = d, p.TPR, p.FPR
				}
			}
			cells = append(cells, []string{
				name,
				experiment.FormatPct(s.Loss),
				fmt.Sprintf("%.3f", s.AUC),
				experiment.FormatPct(tpr),
				experiment.FormatPct(fpr),
			})
		}
	}
	fmt.Fprintln(out, "\n== Fig 8: ROC (AUC and the T=4.5 operating point) per topology and loss ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "fig8", headers, cells)
}

func runFig9(opts options, out io.Writer) error {
	headers := []string{"topology", "loss", "modified_rules", "precision"}
	var cells [][]string
	for _, name := range topo.EvaluationTopologies() {
		cfg := experiment.PrecisionConfig{Config: baseConfig(opts), Runs: opts.runs}
		cfg.Topology = name
		points, err := experiment.Precision(cfg)
		if err != nil {
			return err
		}
		for _, p := range points {
			cells = append(cells, []string{
				name,
				experiment.FormatPct(p.Loss),
				fmt.Sprint(p.ModifiedRules),
				experiment.FormatPct(p.Precision),
			})
		}
	}
	fmt.Fprintln(out, "\n== Fig 9: precision vs loss for 1/2/3 modified rules, T=3.5 ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "fig9", headers, cells)
}

func runFig10(opts options, out io.Writer) error {
	cfg := experiment.SlicingConfig{Config: baseConfig(opts), Runs: opts.runs}
	results, err := experiment.Slicing(cfg)
	if err != nil {
		return err
	}
	headers := []string{"topology", "baseline_opt_T", "baseline_acc", "sliced_opt_T", "sliced_acc"}
	var cells [][]string
	for _, r := range results {
		cells = append(cells, []string{
			r.Topology,
			fmt.Sprintf("%.0f", r.OptBaselineThreshold),
			experiment.FormatPct(r.OptBaselineAccuracy),
			fmt.Sprintf("%.0f", r.OptSlicedThreshold),
			experiment.FormatPct(r.OptSlicedAccuracy),
		})
	}
	fmt.Fprintln(out, "\n== Fig 10: accuracy at optimal threshold, baseline vs slicing ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	if err := writeCSV(opts, "fig10", headers, cells); err != nil {
		return err
	}
	// Fig 11: the full threshold sweep per topology.
	curveHeaders := []string{"topology", "threshold", "baseline_acc", "sliced_acc"}
	var curveCells [][]string
	for _, r := range results {
		for _, c := range r.Curve {
			curveCells = append(curveCells, []string{
				r.Topology,
				fmt.Sprintf("%.0f", c.Threshold),
				fmt.Sprintf("%.3f", c.Baseline),
				fmt.Sprintf("%.3f", c.Sliced),
			})
		}
	}
	fmt.Fprintln(out, "== Fig 11: accuracy vs threshold (full sweep in CSV; sample below) ==")
	sample := curveCells
	if len(sample) > 20 {
		step := len(sample) / 20
		var s [][]string
		for i := 0; i < len(sample); i += step {
			s = append(s, sample[i])
		}
		sample = s
	}
	fmt.Fprint(out, experiment.FormatTable(curveHeaders, sample))
	return writeCSV(opts, "fig11", curveHeaders, curveCells)
}

func runFig12(opts options, out io.Writer) error {
	cfg := experiment.ScalingConfig{Config: baseConfig(opts), FlowCounts: opts.flows}
	points, err := experiment.Scaling(cfg)
	if err != nil {
		return err
	}
	headers := []string{"flows", "rules", "baseline_s", "sliced_s", "speedup", "slice_build_s"}
	var cells [][]string
	for _, p := range points {
		speedup := p.BaselineSecs / p.SlicedSecs
		cells = append(cells, []string{
			fmt.Sprint(p.Flows),
			fmt.Sprint(p.Rules),
			fmt.Sprintf("%.4f", p.BaselineSecs),
			fmt.Sprintf("%.4f", p.SlicedSecs),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.4f", p.SliceBuildSecs),
		})
	}
	fmt.Fprintln(out, "\n== Fig 12: detection time vs number of flows, FatTree(8) ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "fig12", headers, cells)
}

func runLocalization(opts options, out io.Writer) error {
	cfg := experiment.LocalizationConfig{Config: baseConfig(opts), Runs: opts.runs}
	points, err := experiment.Localization(cfg)
	if err != nil {
		return err
	}
	headers := []string{"topology", "detected", "top1_hit", "top3_hit", "delta_top3_hit", "mean_suspects"}
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			p.Topology,
			experiment.FormatPct(p.Detected),
			experiment.FormatPct(p.HitTop1),
			experiment.FormatPct(p.HitTopK),
			experiment.FormatPct(p.DeltaHitTopK),
			fmt.Sprintf("%.1f", p.MeanSuspects),
		})
	}
	fmt.Fprintln(out, "\n== Extension (future work #1): per-switch localization quality ==")
	fmt.Fprintln(out, "   hit = compromised switch or a direct neighbour appears in the suspect list")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "localization", headers, cells)
}

func runCoverage(opts options, out io.Writer) error {
	headers := []string{"topology", "mode", "deviations", "detectable", "undetectable", "loops"}
	var cells [][]string
	// Coverage enumerates every (rule, port, flow) deviation and solves a
	// least-squares membership test per deviation; restrict the default
	// sweep to the two mid-size fabrics (analysis.Coverage handles any
	// topology if invoked directly).
	for _, name := range []string{"fattree4", "bcube14"} {
		for modeName, mode := range map[string]controller.PolicyMode{
			"pair": controller.PairExact,
			"dest": controller.DestAggregate,
		} {
			cfg := baseConfig(opts)
			cfg.Topology = name
			cfg.Mode = mode
			env, err := experiment.NewEnv(cfg)
			if err != nil {
				return err
			}
			rep, err := analysis.Coverage(env.FCM)
			if err != nil {
				return err
			}
			cells = append(cells, []string{
				name,
				modeName,
				fmt.Sprint(rep.Total),
				experiment.FormatPct(rep.DetectableFraction()),
				fmt.Sprint(len(rep.Undetectable)),
				fmt.Sprint(rep.ForwardingLoops),
			})
		}
	}
	sortCells(cells)
	fmt.Fprintln(out, "\n== Extension (future work #2): detectability coverage of all single-rule deviations ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "coverage", headers, cells)
}

func runOverhead(opts options, out io.Writer) error {
	headers := []string{"topology", "flows", "rules",
		"foces_extra_rules", "foces_hdr_B/pkt", "foces_ctrl_B/period",
		"perflow_dedicated_rules", "pathverify_hdr_B/pkt", "pathverify_bw"}
	var cells [][]string
	for _, name := range topo.EvaluationTopologies() {
		cfg := baseConfig(opts)
		cfg.Topology = name
		env, err := experiment.NewEnv(cfg)
		if err != nil {
			return err
		}
		rep := baseline.CompareOverheads(env.FCM)
		cells = append(cells, []string{
			name,
			fmt.Sprint(rep.Flows),
			fmt.Sprint(rep.Rules),
			fmt.Sprint(rep.FOCESExtraRules),
			fmt.Sprint(rep.FOCESHeaderBytesPerPkt),
			fmt.Sprint(rep.FOCESControlBytesPeriod),
			fmt.Sprint(rep.PerFlowDedicatedRules),
			fmt.Sprint(rep.PathVerifyHeaderBytesPerPkt),
			fmt.Sprintf("%.1f%%", rep.PathVerifyBandwidthPct),
		})
	}
	fmt.Fprintln(out, "\n== §VII deployment-cost comparison (monitoring every flow) ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "overhead", headers, cells)
}

func runMonitor(opts options, out io.Writer) error {
	headers := []string{"loss", "raw_FP_rate", "debounced_FP_rate", "raw_TP_rate", "debounced_TP_rate", "delay_periods"}
	var cells [][]string
	for _, loss := range []float64{0.15, 0.20, 0.25} {
		cfg := experiment.MonitorConfig{Config: baseConfig(opts), Loss: loss}
		if opts.runs > 0 {
			cfg.Periods = opts.runs * 4
			cfg.AttackPeriods = opts.runs
		}
		res, err := experiment.MonitorStudy(cfg)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			experiment.FormatPct(res.Loss),
			experiment.FormatPct(res.RawFPRate),
			experiment.FormatPct(res.DebouncedFPRate),
			experiment.FormatPct(res.RawTPRate),
			experiment.FormatPct(res.DebouncedTPRate),
			fmt.Sprint(res.DetectionDelayPeriods),
		})
	}
	fmt.Fprintln(out, "\n== Extension: debounced K-of-N alarms at heavy loss (FatTree(4)) ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	return writeCSV(opts, "monitor", headers, cells)
}

// runChurn benchmarks the dynamic-network subsystem: per-update latency
// of absorbing single-rule changes incrementally (epoch-versioned churn
// manager) versus a cold full-baseline rebuild, on FatTree(8). Besides
// the table/CSV it writes the full trajectory as churn.json so the
// per-update latency series can be tracked over time.
func runChurn(opts options, out io.Writer) error {
	cfg := experiment.ChurnConfig{Config: baseConfig(opts)}
	if opts.runs > 0 {
		cfg.Updates = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.Flows = opts.flows[0]
	}
	res, err := experiment.Churn(cfg)
	if err != nil {
		return err
	}
	headers := []string{"update", "op", "live_rules", "flows", "incremental_ms", "full_rebuild_ms", "speedup",
		"retraced", "slices_reused", "slices_updated", "slices_refactored", "verdict_match"}
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			fmt.Sprint(p.Update),
			p.Op,
			fmt.Sprint(p.Rules),
			fmt.Sprint(p.Flows),
			fmt.Sprintf("%.3f", p.IncrementalSecs*1000),
			fmt.Sprintf("%.3f", p.FullSecs*1000),
			fmt.Sprintf("%.1fx", p.Speedup),
			fmt.Sprint(p.Retraced),
			fmt.Sprint(p.SlicesReused),
			fmt.Sprint(p.SlicesUpdated),
			fmt.Sprint(p.SlicesRefactored),
			fmt.Sprint(p.VerdictMatch),
		})
	}
	fmt.Fprintf(out, "\n== Extension: dynamic networks — incremental update vs full rebuild, %s ==\n", res.Topology)
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	fmt.Fprintf(out, "median speedup %.1fx (target >= 10x); totals: incremental %.3fs, full rebuilds %.3fs\n",
		res.MedianSpeedup, res.TotalIncrementalSecs, res.TotalFullSecs)
	if opts.csvDir != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(opts.csvDir, "churn.json"), append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return writeCSV(opts, "churn", headers, cells)
}

// runTelemetry measures what live metrics cost on the detection hot
// path (System.Run with a no-op vs a live registry) and archives the
// result — including the full metrics snapshot the instrumented arm
// produced — as results/telemetry_overhead.json.
func runTelemetry(opts options, out io.Writer) error {
	cfg := experiment.TelemetryOverheadConfig{Seed: opts.seed}
	if opts.runs > 0 {
		cfg.Runs = opts.runs
	}
	res, err := experiment.TelemetryOverhead(cfg)
	if err != nil {
		return err
	}
	headers := []string{"topology", "rules", "slices", "nop_ns/detect", "live_ns/detect", "overhead"}
	cells := [][]string{{
		res.Topology,
		fmt.Sprint(res.Rules),
		fmt.Sprint(res.Slices),
		fmt.Sprintf("%.0f", res.NopNs),
		fmt.Sprintf("%.0f", res.EnabledNs),
		fmt.Sprintf("%+.2f%%", res.OverheadPct),
	}}
	fmt.Fprintln(out, "\n== telemetry overhead (prepared engines, clean path) ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	fmt.Fprintf(out, "metric families populated: %d\n", len(res.Families))
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("results", "telemetry_overhead.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return writeCSV(opts, "telemetry", headers, cells)
}

// runKernels compares the parallel blocked linear-algebra kernels
// against the serial reference path: baseline preparation (Gram,
// Cholesky factor, slice build) under both kernel defaults, plus
// batched multi-RHS detection vs a per-window loop. The trajectory is
// always archived as results/kernels.json; with -check the run fails
// if the parallel kernels regress past serial x1.25 (the slack keeps
// GOMAXPROCS=1 runs, where both arms do the same work, from flapping)
// or if any equivalence check fails.
func runKernels(opts options, out io.Writer) error {
	cfg := experiment.KernelsConfig{Topology: opts.topo, Seed: opts.seed}
	if opts.runs > 0 {
		cfg.Repeats = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.Flows = opts.flows[0]
	}
	res, err := experiment.Kernels(cfg)
	if err != nil {
		return err
	}
	headers := []string{"arm", "gram_ms", "factor_ms", "slice_build_ms", "total_ms"}
	row := func(name string, p experiment.KernelsPrepare) []string {
		return []string{name,
			fmt.Sprintf("%.3f", p.GramSecs*1000),
			fmt.Sprintf("%.3f", p.FactorSecs*1000),
			fmt.Sprintf("%.3f", p.SliceBuildSecs*1000),
			fmt.Sprintf("%.3f", p.BestTotalSecs*1000),
		}
	}
	cells := [][]string{row("serial", res.Serial), row("parallel", res.Parallel)}
	fmt.Fprintf(out, "\n== kernels: baseline preparation, %s flows=%d rules=%d slices=%d GOMAXPROCS=%d ==\n",
		res.Topology, res.Flows, res.Rules, res.Slices, res.GoMaxProcs)
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	fmt.Fprintf(out, "prepare speedup %.2fx; verdicts match: %v\n", res.PrepareSpeedup, res.VerdictsMatch)
	fmt.Fprintf(out, "detect: loop %.0f ns/window, batch %.0f ns/window (%.2fx, %d windows, identical: %v)\n",
		minOf(res.LoopNsPerWindow), minOf(res.BatchNsPerWindow), res.BatchSpeedup, res.BatchWindows, res.BatchMatchesLoop)
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("results", "kernels.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if err := writeCSV(opts, "kernels", headers, cells); err != nil {
		return err
	}
	if opts.check {
		if !res.VerdictsMatch {
			return fmt.Errorf("kernels check: serial and parallel engines disagree on probe verdicts")
		}
		if !res.BatchMatchesLoop {
			return fmt.Errorf("kernels check: DetectBatch diverged from the per-window loop")
		}
		if res.Parallel.BestTotalSecs > res.Serial.BestTotalSecs*1.25 {
			return fmt.Errorf("kernels check: parallel prepare %.3fms exceeds serial %.3fms x1.25",
				res.Parallel.BestTotalSecs*1000, res.Serial.BestTotalSecs*1000)
		}
	}
	return nil
}

// runStreamBench exercises the streaming ingestion layer: verdict
// equivalence against the pull-based Run path on an identical snapshot
// sequence (clean, attacked, silent switch, counter reset), the
// ingest-to-verdict latency tail over real traffic windows, and a
// saturating synthetic load phase through the bounded-queue assembler.
// The result is always archived as results/stream.json; with -check the
// run fails on verdict divergence, on sustained ingestion below 1M
// updates/sec, on unbounded queue growth, or on a p99 latency
// regression past 3x the previously archived run.
func runStreamBench(opts options, out io.Writer) error {
	cfg := experiment.StreamBenchConfig{Topology: opts.topo, Seed: opts.seed}
	if opts.runs > 0 {
		cfg.LatencyWindows = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.Flows = opts.flows[0]
	}
	resultPath := filepath.Join("results", "stream.json")
	var prev experiment.StreamBenchResult
	havePrev := false
	if blob, err := os.ReadFile(resultPath); err == nil {
		if json.Unmarshal(blob, &prev) == nil && prev.P99LatencyMs > 0 {
			havePrev = true
		}
	}
	res, err := experiment.StreamBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== stream: push-driven ingestion, %s switches=%d flows=%d rules=%d GOMAXPROCS=%d ==\n",
		res.Topology, res.Switches, res.Flows, res.Rules, res.GoMaxProcs)
	fmt.Fprintf(out, "equivalence: %d windows replayed, %d verdicts compared, match: %v\n",
		res.CheckWindows, res.CheckedReports, res.VerdictsMatch)
	if res.Mismatch != "" {
		fmt.Fprintf(out, "  mismatch: %s\n", res.Mismatch)
	}
	fmt.Fprintf(out, "latency: %d windows, ingest-to-verdict p50 %.3fms p99 %.3fms max %.3fms\n",
		res.DetectWindows, res.P50LatencyMs, res.P99LatencyMs, res.MaxLatencyMs)
	fmt.Fprintf(out, "load: %.2fM updates/sec over %.2fs (%d pushes, %d windows, %d coalesced, %d dropped windows)\n",
		res.UpdatesPerSec/1e6, res.LoadSecs, res.LoadPushes, res.LoadWindows, res.CoalescedSnapshots, res.DroppedWindows)
	fmt.Fprintf(out, "queues: max depth %d of bound %d (bounded: %v)\n",
		res.MaxQueueDepth, res.QueueBound, res.QueueBounded)
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(resultPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if opts.check {
		if !res.VerdictsMatch {
			return fmt.Errorf("stream check: verdicts diverged from the polled path: %s", res.Mismatch)
		}
		if !res.QueueBounded {
			return fmt.Errorf("stream check: queue depth %d exceeded bound %d", res.MaxQueueDepth, res.QueueBound)
		}
		if res.UpdatesPerSec < 1e6 {
			return fmt.Errorf("stream check: sustained %.0f updates/sec, below the 1M floor", res.UpdatesPerSec)
		}
		if havePrev && res.P99LatencyMs > prev.P99LatencyMs*3 {
			return fmt.Errorf("stream check: p99 ingest-to-verdict latency %.3fms regressed past previous %.3fms x3",
				res.P99LatencyMs, prev.P99LatencyMs)
		}
	}
	return nil
}

// runAlloc exercises the zero-allocation steady state of the pooled
// streaming pipeline: verdict equivalence against the map-based polled
// path under the full fault schedule (attack, silent switch, counter
// reset, rule churn), then allocations per window, GC pause share and
// the ingest-to-verdict latency tail over a warm replayed stream load.
// The result is always archived as results/alloc.json; with -check the
// run fails on verdict divergence, on allocs/window above the budget,
// or on a p99 latency regression past 3x the archived stream
// experiment's baseline (results/stream.json).
func runAlloc(opts options, out io.Writer) error {
	cfg := experiment.AllocBenchConfig{Topology: opts.topo, Seed: opts.seed}
	if opts.runs > 0 {
		cfg.MeasureWindows = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.Flows = opts.flows[0]
	}
	// The archived stream experiment is the latency baseline: the pooled
	// pipeline must not trade allocations for tail latency.
	var baseline experiment.StreamBenchResult
	haveBaseline := false
	if blob, err := os.ReadFile(filepath.Join("results", "stream.json")); err == nil {
		if json.Unmarshal(blob, &baseline) == nil && baseline.P99LatencyMs > 0 {
			haveBaseline = true
		}
	}
	res, err := experiment.AllocBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== alloc: pooled steady state, %s switches=%d flows=%d rules=%d GOMAXPROCS=%d ==\n",
		res.Topology, res.Switches, res.Flows, res.Rules, res.GoMaxProcs)
	fmt.Fprintf(out, "equivalence: %d windows replayed (attack, silent, reset, churn), %d verdicts compared, match: %v\n",
		res.CheckWindows, res.CheckedReports, res.VerdictsMatch)
	if res.Mismatch != "" {
		fmt.Fprintf(out, "  mismatch: %s\n", res.Mismatch)
	}
	fmt.Fprintf(out, "steady state: %.0f allocs/window, %.0f B/window over %d windows after %d warmup (budget %.0f, within: %v)\n",
		res.AllocsPerWindow, res.BytesPerWindow, res.MeasuredWindows, res.WarmupWindows, res.AllocBudget, res.WithinBudget)
	fmt.Fprintf(out, "gc: %d cycles, %.3fms pause over %.3fs (%.3f%% of wall time)\n",
		res.GCCycles, res.GCPauseMs, res.ElapsedSecs, res.GCPauseShare*100)
	fmt.Fprintf(out, "latency: ingest-to-verdict p50 %.3fms p99 %.3fms max %.3fms\n",
		res.P50LatencyMs, res.P99LatencyMs, res.MaxLatencyMs)
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("results", "alloc.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if opts.check {
		if !res.VerdictsMatch {
			return fmt.Errorf("alloc check: pooled verdicts diverged from the map-based polled path: %s", res.Mismatch)
		}
		if !res.WithinBudget {
			return fmt.Errorf("alloc check: %.0f allocs/window exceeds the %.0f budget",
				res.AllocsPerWindow, res.AllocBudget)
		}
		if haveBaseline && res.P99LatencyMs > baseline.P99LatencyMs*3 {
			return fmt.Errorf("alloc check: p99 ingest-to-verdict latency %.3fms regressed past the archived stream baseline %.3fms x3",
				res.P99LatencyMs, baseline.P99LatencyMs)
		}
	}
	return nil
}

// runSparse exercises the sparse Cholesky solver: a scale arm on a
// topology whose dense Gram exceeds the memory budget (prepared
// sparse-only, with peak heap sampled) and an equivalence arm that
// prepares every evaluation topology through both paths and compares
// verdicts and residual norms window by window. The result is always
// archived as results/sparse.json; with -check the run fails unless
// the dense Gram really exceeds the budget, the sparse peak stays
// within it, verdicts match with residual deltas <= 1e-12, and the
// sparse prepare has not regressed past 1.25x the previously archived
// run.
func runSparse(opts options, out io.Writer) error {
	cfg := experiment.SparseConfig{Topology: opts.topo, Seed: opts.seed}
	if opts.runs > 0 {
		cfg.Windows = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.GroupSize = opts.flows[0]
	}
	resultPath := filepath.Join("results", "sparse.json")
	var prev experiment.SparseResult
	havePrev := false
	if blob, err := os.ReadFile(resultPath); err == nil {
		if json.Unmarshal(blob, &prev) == nil && prev.PrepareSecs > 0 && prev.Topology == cfg.Topology {
			havePrev = true
		}
	}
	res, err := experiment.Sparse(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== sparse: direct solver on %s, hosts=%d group=%d H=%dx%d GOMAXPROCS=%d ==\n",
		res.Topology, res.Hosts, res.GroupSize, res.Rows, res.Cols, res.GoMaxProcs)
	fmt.Fprintf(out, "gram: %d nnz (density %.4f), factor %d nnz (fill %.2fx)\n",
		res.GramNNZ, res.GramDensity, res.FactorNNZ, res.FillRatio)
	fmt.Fprintf(out, "memory: dense Gram would need %.0f MiB (budget %.0f MiB, exceeds: %v); sparse peak heap %.0f MiB (within: %v)\n",
		float64(res.DenseGramBytes)/(1<<20), float64(res.BudgetBytes)/(1<<20), res.DenseExceedsBudget,
		float64(res.PeakHeapBytes)/(1<<20), res.SparseWithinBudget)
	fmt.Fprintf(out, "prepare: %.3fs total (gram %.3fs, ordering %.3fs, symbolic %.3fs, numeric %.3fs)\n",
		res.PrepareSecs, res.GramSecs, res.OrderingSecs, res.SymbolicSecs, res.NumericSecs)
	fmt.Fprintf(out, "detect: %.2fms/window over %d windows; clean anomalous: %v, tampered anomalous: %v\n",
		res.SolveNsPerWindow/1e6, res.Windows, res.CleanAnomalous, res.TamperedAnomalous)
	for _, eq := range res.Equiv {
		fmt.Fprintf(out, "equivalence %-10s H=%dx%d density %.4f: sparse-backed %v, verdicts match %v, max residual delta %.2e\n",
			eq.Topology, eq.Rows, eq.Cols, eq.GramDensity, eq.SparseBacked, eq.VerdictsMatch, eq.MaxResidualDelta)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(resultPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if opts.check {
		if !res.DenseExceedsBudget {
			return fmt.Errorf("sparse check: dense Gram %d bytes does not exceed the %d-byte budget — scale the topology up",
				res.DenseGramBytes, res.BudgetBytes)
		}
		if !res.SparseWithinBudget {
			return fmt.Errorf("sparse check: peak heap %d bytes exceeded the %d-byte budget", res.PeakHeapBytes, res.BudgetBytes)
		}
		if !res.VerdictsMatch {
			return fmt.Errorf("sparse check: sparse and dense verdicts diverged")
		}
		if res.MaxResidualDelta > 1e-12 {
			return fmt.Errorf("sparse check: residual delta %.3e exceeds 1e-12", res.MaxResidualDelta)
		}
		if res.CleanAnomalous || !res.TamperedAnomalous {
			return fmt.Errorf("sparse check: scale-arm verdicts wrong (clean=%v tampered=%v)", res.CleanAnomalous, res.TamperedAnomalous)
		}
		if havePrev && res.PrepareSecs > prev.PrepareSecs*1.25 {
			return fmt.Errorf("sparse check: prepare %.3fs regressed past previous %.3fs x1.25", res.PrepareSecs, prev.PrepareSecs)
		}
	}
	return nil
}

// runCluster exercises the sharded multi-node detection cluster:
// byte-for-byte report equivalence between the distributed and
// single-process paths (clean, attacked, churn-reconciled windows),
// verdict survival of a detector node killed mid-window, and detect
// throughput of an N-node cluster against a single node. The result is
// always archived as results/cluster.json; with -check the run fails
// on any report divergence (including across the node kill), on a
// distributed window exceeding the collection interval, or — on hosts
// with GOMAXPROCS >= 4, where the in-process nodes can actually run in
// parallel — on a multi-node/one-node throughput ratio below 2x.
func runCluster(opts options, out io.Writer) error {
	cfg := experiment.ClusterConfig{Topology: opts.topo, Seed: opts.seed}
	if opts.runs > 0 {
		cfg.ThroughputWindows = opts.runs
	}
	if len(opts.flows) > 0 {
		cfg.Flows = opts.flows[0]
	}
	res, err := experiment.Cluster(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n== cluster: sharded detection, %s switches=%d flows=%d rules=%d shards=%d nodes=%d GOMAXPROCS=%d ==\n",
		res.Topology, res.Switches, res.Flows, res.Rules, res.Shards, res.Nodes, res.GoMaxProcs)
	headers := []string{"window", "path", "anomalous", "match"}
	var cells [][]string
	for _, w := range res.Windows {
		cells = append(cells, []string{fmt.Sprint(w.Window), w.Path, fmt.Sprint(w.Anomalous), fmt.Sprint(w.Match)})
	}
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	fmt.Fprintf(out, "equivalence: %d windows, all match: %v; baseline syncs: %d snapshots, %d deltas\n",
		res.EquivWindows, res.VerdictsMatch, res.SnapshotSyncs, res.DeltaSyncs)
	if res.Mismatch != "" {
		fmt.Fprintf(out, "  mismatch: %s\n", res.Mismatch)
	}
	fmt.Fprintf(out, "node kill: verdict identical across death: %v (evictions %d, requeued shards %d, degraded: %v)\n",
		res.KillMatch, res.Evictions, res.RequeuedShards, res.DegradedAfterKill)
	fmt.Fprintf(out, "throughput: %d windows, 1 node %.3fs vs %d nodes %.3fs (%.2fx); first window %.3fs, max warm window %.3fs (interval %.0fs, within: %v)\n",
		res.ThroughputWindows, res.OneNodeSecs, res.Nodes, res.MultiNodeSecs, res.ThroughputRatio,
		res.FirstWindowSecs, res.MaxWindowSecs, res.IntervalSecs, res.WithinInterval)
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("results", "cluster.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if err := writeCSV(opts, "cluster", headers, cells); err != nil {
		return err
	}
	if opts.check {
		if !res.VerdictsMatch {
			return fmt.Errorf("cluster check: distributed reports diverged from single-process: %s", res.Mismatch)
		}
		if !res.KillMatch {
			return fmt.Errorf("cluster check: verdict changed across a node death (evictions %d, requeued %d)",
				res.Evictions, res.RequeuedShards)
		}
		if res.DeltaSyncs == 0 {
			return fmt.Errorf("cluster check: no incremental deltas shipped — baseline replication fell back to snapshots only")
		}
		if res.SnapshotSyncs <= int64(res.Shards) {
			return fmt.Errorf("cluster check: %d snapshots for %d shards — the refactoring epoch never re-shipped a baseline",
				res.SnapshotSyncs, res.Shards)
		}
		if !res.WithinInterval {
			return fmt.Errorf("cluster check: a distributed window took %.3fs (first %.3fs), exceeding the %.0fs collection interval",
				res.MaxWindowSecs, res.FirstWindowSecs, res.IntervalSecs)
		}
		if res.ThroughputGated && res.ThroughputRatio < 2.0 {
			return fmt.Errorf("cluster check: %d-node throughput only %.2fx one node (>= 2x required at GOMAXPROCS %d)",
				res.Nodes, res.ThroughputRatio, res.GoMaxProcs)
		}
		if !res.ThroughputGated {
			fmt.Fprintf(out, "note: throughput ratio gate waived (GOMAXPROCS %d < 4 — nodes cannot run in parallel)\n", res.GoMaxProcs)
		}
	}
	return nil
}

// runLocalize exercises the active-probe localization subsystem
// end-to-end: for every (topology, policy, anomaly class) arm it
// injects a single anomaly per run, detects it through System.Run with
// a LocalizeConfig attached, and scores whether the ranked culprit
// report named the attacked rule in the top 3 within the probe budget
// (ceil(log2(|suspect rules|)) + 2). The result is always archived as
// results/localize.json; with -check the run fails if nothing was
// detected, if any run breached its probe budget, or if the top-3 hit
// rate over detected runs drops below 0.9. Pair-exact arms localize
// deterministically; the dest-aggregate arms are what keep the rate
// below 1.0 — a rejoining anomaly over shared per-destination rules
// can be absorbed by the least-squares fit, leaving no residual signal
// to steer probes by.
func runLocalize(opts options, out io.Writer) error {
	cfg := experiment.LocalizeConfig{Config: baseConfig(opts)}
	if opts.runs > 0 {
		cfg.Runs = opts.runs
	}
	res, err := experiment.Localize(cfg)
	if err != nil {
		return err
	}
	headers := []string{"topology", "policy", "class", "runs", "detected", "top1", "top3",
		"mean_probes", "max_probes", "mean_budget", "breaches", "mean_suspect_rules"}
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			p.Topology, p.Mode, string(p.Class),
			fmt.Sprint(p.Runs), fmt.Sprint(p.Detected),
			fmt.Sprint(p.HitTop1), fmt.Sprint(p.HitTop3),
			fmt.Sprintf("%.2f", p.MeanProbes), fmt.Sprint(p.MaxProbes),
			fmt.Sprintf("%.2f", p.MeanBudget), fmt.Sprint(p.BudgetBreaches),
			fmt.Sprintf("%.1f", p.MeanSuspectRules),
		})
	}
	fmt.Fprintln(out, "\n== localize: active-probe culprit localization per anomaly class ==")
	fmt.Fprint(out, experiment.FormatTable(headers, cells))
	fmt.Fprintf(out, "totals: %d runs, %d detected, %d localized, top-3 hit rate %.3f (%d/%d), mean probes %.2f, budget breaches %d\n",
		res.Runs, res.Detected, res.Localized, res.HitTop3Rate, res.HitTop3, res.Detected, res.MeanProbes, res.BudgetBreaches)
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("results", "localize.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if err := writeCSV(opts, "localize", headers, cells); err != nil {
		return err
	}
	if opts.check {
		if res.Detected == 0 {
			return fmt.Errorf("localize check: no run detected its injected anomaly")
		}
		if res.BudgetBreaches != 0 {
			return fmt.Errorf("localize check: %d runs exceeded the probe budget ceil(log2(n))+2", res.BudgetBreaches)
		}
		if res.HitTop3Rate < 0.9 {
			return fmt.Errorf("localize check: top-3 hit rate %.3f (%d/%d) below the 0.9 floor",
				res.HitTop3Rate, res.HitTop3, res.Detected)
		}
	}
	return nil
}

func minOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// sortCells orders rows lexicographically for deterministic output
// (the mode map iterates randomly).
func sortCells(cells [][]string) {
	sort.Slice(cells, func(i, j int) bool {
		for k := range cells[i] {
			if cells[i][k] != cells[j][k] {
				return cells[i][k] < cells[j][k]
			}
		}
		return false
	})
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
