package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Errorf("missing header:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Stanford,26,26,650") {
		t.Errorf("csv content wrong:\n%s", data)
	}
}

func TestRunFig12WithFlowList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig12", "-flows", "120,240"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "120") || !strings.Contains(s, "240") {
		t.Errorf("flow sweep missing:\n%s", s)
	}
}

func TestRunLocalizationSmall(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "loc", "-runs", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "localization") {
		t.Errorf("missing section:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "bogus"}, &out); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := run([]string{"-flows", "x"}, &out); err == nil {
		t.Fatal("bad flow list must error")
	}
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunChurnWritesTrajectory(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-exp", "churn", "-runs", "3", "-flows", "120", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dynamic networks") || !strings.Contains(out.String(), "median speedup") {
		t.Errorf("missing section:\n%s", out.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"topology": "FatTree(8)"`, `"medianSpeedup"`, `"incrementalSecs"`, `"verdictMatch": true`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("churn.json missing %s:\n%s", want, blob)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "churn.csv")); err != nil {
		t.Error(err)
	}
}

func TestRunKernelsWritesTrajectory(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var out strings.Builder
	if err := run([]string{"-exp", "kernels", "-topo", "fattree4", "-runs", "2", "-check"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kernels: baseline preparation") || !strings.Contains(out.String(), "prepare speedup") {
		t.Errorf("missing section:\n%s", out.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "results", "kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"topology": "fattree4"`, `"serialPrepare"`, `"parallelPrepare"`, `"verdictsMatch": true`, `"batchMatchesLoop": true`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("kernels.json missing %s:\n%s", want, blob)
		}
	}
}

func TestRunAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment smoke is slow")
	}
	dir := t.TempDir()
	var out strings.Builder
	for _, exp := range []string{"fig7", "fig8", "fig9", "fig10", "coverage", "overhead"} {
		if err := run([]string{"-exp", exp, "-runs", "2", "-csv", dir}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	for _, want := range []string{"Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11", "coverage", "deployment-cost"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
