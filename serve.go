package foces

import (
	"context"
	"fmt"
	"time"

	"foces/internal/collector"
	"foces/internal/telemetry"
)

// This file is the streaming detection entry point. The historical
// shape of a FOCES monitor was a caller-driven loop — for { Poll; Run }
// — which couples detection cadence to collection latency and makes
// every layer assume one full poll per period. System.Serve inverts
// it: a collector.WindowAssembler turns pushed counter snapshots into
// completed windows on its own clock, and Serve consumes those windows
// continuously, grouping batchable ones through RunBatch and emitting
// verdicts on a channel. Health states and churn epochs flow through
// unchanged: a streaming window straddling an ApplyUpdate carries the
// same epoch/straddle metadata a polled window would, so it reconciles
// through exactly the same masked-row path.

// Streaming types re-exported from internal/collector. The assembler
// and sampler live with the collection plane; Serve only consumes
// completed windows.
type (
	// WindowAssembler turns pushed cumulative counter snapshots into
	// completed detection windows.
	WindowAssembler = collector.WindowAssembler
	// AssemblerConfig tunes the window assembler's bounded queues.
	AssemblerConfig = collector.StreamConfig
	// StreamUpdate is one pushed cumulative counter snapshot.
	StreamUpdate = collector.Update
	// StreamWindow is one completed streaming detection window.
	StreamWindow = collector.Window
	// StreamStats snapshots the assembler's ingestion counters.
	StreamStats = collector.StreamStats
	// AdaptiveSampler tunes per-switch sampling from detection feedback.
	AdaptiveSampler = collector.AdaptiveSampler
	// SamplerConfig tunes the adaptive sampler.
	SamplerConfig = collector.SamplerConfig
	// SamplerStats snapshots the sampler's state.
	SamplerStats = collector.SamplerStats
	// ProbeSample is a backed-off switch's multi-window counter delta.
	ProbeSample = collector.ProbeSample
	// StreamTelemetry is the streaming ingestion metric family set.
	StreamTelemetry = telemetry.StreamMetrics
)

// NewWindowAssembler builds a streaming window assembler over the
// given switch set.
func NewWindowAssembler(switches []SwitchID, cfg AssemblerConfig) *WindowAssembler {
	return collector.NewWindowAssembler(switches, cfg)
}

// NewAdaptiveSampler builds an adaptive per-switch sampler; wire it
// into both AssemblerConfig.Sampler and StreamConfig.Sampler to close
// the detection-to-collection feedback loop.
func NewAdaptiveSampler(switches []SwitchID, cfg SamplerConfig) *AdaptiveSampler {
	return collector.NewAdaptiveSampler(switches, cfg)
}

// NewStreamTelemetry registers the streaming ingestion families
// (queue depth, drops, window lag, detection latency) on reg. Wire the
// result into WindowAssembler.SetTelemetry and StreamConfig.Telemetry.
func NewStreamTelemetry(reg *TelemetryRegistry) *StreamTelemetry {
	return telemetry.NewStreamMetrics(reg)
}

// StreamConfig configures System.Serve.
type StreamConfig struct {
	// Windows is the completed-window stream, normally
	// WindowAssembler.Windows(). Required.
	Windows <-chan StreamWindow
	// BatchMax caps how many pending windows are grouped into one
	// RunBatch call when the consumer has fallen behind the assembler;
	// batched windows share one multi-RHS full-engine solve. Zero
	// selects 8, one disables batching.
	BatchMax int
	// Buffer sizes the emitted report channel; zero selects 16.
	Buffer int
	// Mode selects the engines per window (default ModeAuto).
	Mode Mode
	// Options overrides the system's detection options per window.
	Options DetectOptions
	// Localize, when set, opts every streamed window into active-probe
	// localization: anomalous verdicts carry a ranked culprit report in
	// Report.Localization. Probing runs inline on the serve goroutine,
	// so budget its deadlines against the window period.
	Localize *LocalizeConfig
	// Sampler, when set, receives every window's contribution totals,
	// probe samples and verdict — the feedback edge that backs off
	// stable switches and tightens suspects.
	Sampler *AdaptiveSampler
	// Telemetry, when set, records end-to-end ingest-to-verdict
	// latency per window.
	Telemetry *StreamTelemetry
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.Buffer <= 0 {
		c.Buffer = 16
	}
	return c
}

// StreamReport is one streamed window's detection outcome.
type StreamReport struct {
	// Report is the detection outcome; zero-valued when Err is set.
	Report Report
	// Window is the assembler's window sequence number.
	Window uint64
	// Latency is first-push-to-verdict wall time (zero when the window
	// carried no push timestamp).
	Latency time.Duration
	// Batched is how many windows shared this report's RunBatch call
	// (1 = ran alone).
	Batched int
	// Err is the window's detection error, if any; Serve keeps running
	// after per-window errors.
	Err error
}

// Serve runs continuous streaming detection: it consumes completed
// windows from cfg.Windows, converts each to an Observation (missing
// switches masked, straddled windows reconciled under their oldest
// baseline epoch — identical dispatch to the polled path), groups
// pending windows through RunBatch, and emits one StreamReport per
// window, in window order, on the returned channel.
//
// Serve returns immediately; the loop runs until ctx is cancelled or
// cfg.Windows is closed, then closes the report channel. Windows with
// no usable counters at all (every switch missing — e.g. the priming
// window) are skipped, matching a polled monitor that primes before
// its first period. Per-window detection errors are reported on the
// channel, not fatal.
func (s *System) Serve(ctx context.Context, cfg StreamConfig) (<-chan StreamReport, error) {
	if cfg.Windows == nil {
		return nil, fmt.Errorf("foces: StreamConfig.Windows is required (use WindowAssembler.Windows)")
	}
	cfg = cfg.withDefaults()
	out := make(chan StreamReport, cfg.Buffer)
	go func() {
		defer close(out)
		// Batch and observation scratch live across iterations so the
		// steady-state loop reuses their backing arrays.
		var (
			batch []StreamWindow
			obs   []Observation
		)
		for {
			var first StreamWindow
			select {
			case <-ctx.Done():
				return
			case w, ok := <-cfg.Windows:
				if !ok {
					return
				}
				first = w
			}
			batch = append(batch[:0], first)
			for len(batch) < cfg.BatchMax {
				select {
				case w, ok := <-cfg.Windows:
					if !ok {
						s.serveBatch(ctx, cfg, batch, &obs, out)
						return
					}
					batch = append(batch, w)
				default:
					goto drained
				}
			}
		drained:
			if !s.serveBatch(ctx, cfg, batch, &obs, out) {
				return
			}
		}
	}()
	return out, nil
}

// serveBatch detects one group of pending windows, emits their reports
// in window order, and releases every window's pooled storage back to
// the assembler. It returns false when ctx cancellation interrupted
// emission. The observation scratch at *scratch is reused across calls.
func (s *System) serveBatch(ctx context.Context, cfg StreamConfig, batch []StreamWindow, scratch *[]Observation, out chan<- StreamReport) bool {
	// Windows with zero usable rows (all switches missing, e.g. the
	// priming window) cannot form an equation system; skip them.
	kept := batch[:0]
	for i := range batch {
		if len(batch[i].Deltas) > 0 {
			kept = append(kept, batch[i])
		} else {
			batch[i].Release()
		}
	}
	if len(kept) == 0 {
		return true
	}
	obs := (*scratch)[:0]
	for i := range kept {
		obs = append(obs, windowObservation(kept[i], cfg))
	}
	*scratch = obs
	reports, err := s.RunBatch(obs)
	if err != nil {
		// A batch-level error names one window; fall back to per-window
		// Runs so one bad window cannot take down its neighbours.
		return s.serveSingly(ctx, cfg, kept, obs, out)
	}
	for i := range kept {
		ok := s.emitReport(ctx, cfg, kept[i], reports[i], len(kept), nil, out)
		kept[i].Release()
		if !ok {
			return false
		}
	}
	return true
}

// serveSingly is serveBatch's degraded path: each window runs alone so
// errors stay per-window.
func (s *System) serveSingly(ctx context.Context, cfg StreamConfig, kept []StreamWindow, obs []Observation, out chan<- StreamReport) bool {
	for i := range kept {
		rep, err := s.Run(obs[i])
		ok := s.emitReport(ctx, cfg, kept[i], rep, 1, err, out)
		kept[i].Release()
		if !ok {
			return false
		}
	}
	return true
}

// emitReport finalizes one window's StreamReport — latency accounting,
// sampler feedback, telemetry — and sends it. Returns false on ctx
// cancellation.
func (s *System) emitReport(ctx context.Context, cfg StreamConfig, w StreamWindow, rep Report, batched int, err error, out chan<- StreamReport) bool {
	// Report.Missing echoes the observation's slice, which aliases the
	// window's pooled storage; the report outlives the window's Release,
	// so detach it.
	if len(rep.Missing) > 0 {
		rep.Missing = append([]SwitchID(nil), rep.Missing...)
	}
	sr := StreamReport{Report: rep, Window: w.Seq, Batched: batched, Err: err}
	if !w.Opened.IsZero() {
		sr.Latency = time.Since(w.Opened)
	}
	if err == nil {
		if cfg.Sampler != nil {
			cfg.Sampler.Observe(w.Contributed, w.Probes, rep.Anomalous, rep.Suspects)
		}
		if cfg.Telemetry != nil && sr.Latency > 0 {
			cfg.Telemetry.DetectLatencySeconds.Observe(sr.Latency.Seconds())
		}
	}
	select {
	case <-ctx.Done():
		return false
	case out <- sr:
		return true
	}
}

// windowObservation converts one completed streaming window into the
// Observation a polled monitor would have built from the equivalent
// PollResult: empty missing means nil (clean path), and a straddling
// window is dated by its oldest baseline epoch so the reconciled path
// masks every rule changed since.
func windowObservation(w StreamWindow, cfg StreamConfig) Observation {
	missing := w.Missing
	if len(missing) == 0 {
		missing = nil
	}
	epoch := w.Epoch
	for _, from := range w.Straddled {
		if from < epoch {
			epoch = from
		}
	}
	return Observation{
		Counters: w.Deltas,
		RunOptions: RunOptions{
			Missing:  missing,
			Epoch:    epoch,
			Mode:     cfg.Mode,
			Options:  cfg.Options,
			Localize: cfg.Localize,
		},
	}
}
