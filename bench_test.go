// Benchmarks mirroring the paper's evaluation artifacts: one benchmark
// per table/figure (Table I, Figs 7-12) plus ablations for the design
// choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package foces_test

import (
	"math/rand"
	"sync"
	"testing"

	"foces"
	"foces/internal/core"
	"foces/internal/experiment"
	"foces/internal/matrix"
	"foces/internal/stats"
	"foces/internal/telemetry"
	"foces/internal/topo"
)

// benchEnv lazily builds and caches experiment environments so
// sub-benchmarks share setup.
var benchEnvs sync.Map

func getEnv(b *testing.B, cfg experiment.Config) *experiment.Env {
	b.Helper()
	key := cfg
	if v, ok := benchEnvs.Load(key); ok {
		return v.(*experiment.Env)
	}
	env, err := experiment.NewEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchEnvs.Store(key, env)
	return env
}

// BenchmarkTableI measures the full pipeline build (topology ->
// controller rules -> data plane -> FCM -> slices) per evaluation
// topology.
func BenchmarkTableI(b *testing.B) {
	for _, name := range topo.EvaluationTopologies() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := experiment.NewEnv(experiment.Config{Topology: name, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if env.FCM.NumFlows() == 0 {
					b.Fatal("no flows")
				}
			}
		})
	}
}

// BenchmarkFig7_FunctionalDetect measures one Fig. 7 detection period
// on BCube(1,4): simulate an interval of traffic, collect counters,
// solve the equation system and score the anomaly index.
func BenchmarkFig7_FunctionalDetect(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "bcube14", Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Score(0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_ROC measures one positive/negative ROC sample pair
// (the unit of work Fig. 8 repeats hundreds of times).
func BenchmarkFig8_ROC(b *testing.B) {
	for _, name := range topo.EvaluationTopologies() {
		b.Run(name, func(b *testing.B) {
			env := getEnv(b, experiment.Config{Topology: name, Seed: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Score(0.10); err != nil {
					b.Fatal(err)
				}
				attacks, err := env.ApplyRandomAttacks(1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := env.Score(0.10); err != nil {
					b.Fatal(err)
				}
				if err := env.RevertAttacks(attacks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9_Precision measures one precision observation with
// three modified rules (Fig. 9's heaviest case).
func BenchmarkFig9_Precision(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attacks, err := env.ApplyRandomAttacks(3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Score(0.05); err != nil {
			b.Fatal(err)
		}
		if err := env.RevertAttacks(attacks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_SlicingAccuracy measures the paired
// baseline-plus-sliced detection on one observation (Fig. 10's unit of
// work).
func BenchmarkFig10_SlicingAccuracy(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 4})
	y, err := env.Observe(0.10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(env.FCM.H, y, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := core.DetectSliced(env.Slices, y, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_ThresholdSweep measures scoring a cached sample set
// across the 0..100 threshold sweep (Fig. 11's evaluation loop).
func BenchmarkFig11_ThresholdSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]stats.Sample, 400)
	for i := range samples {
		samples[i] = stats.Sample{Score: rng.Float64() * 50, Positive: i%2 == 0}
	}
	thresholds := stats.LinSpace(0, 100, 101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range thresholds {
			stats.Evaluate(samples, t)
		}
	}
}

// BenchmarkFig12_DetectionTime measures the baseline vs sliced solve
// at increasing flow counts on FatTree(8) — the Fig. 12 series.
func BenchmarkFig12_DetectionTime(b *testing.B) {
	top, err := topo.ByName("fattree8")
	if err != nil {
		b.Fatal(err)
	}
	for _, flows := range []int{240, 480, 960, 1920} {
		pairs, err := experiment.PairSubset(top, flows)
		if err != nil {
			b.Fatal(err)
		}
		env, err := experiment.NewEnvOn(experiment.Config{Seed: 6, PacketsPerFlow: 100}, top, pairs)
		if err != nil {
			b.Fatal(err)
		}
		y, err := env.Observe(0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("baseline/flows="+itoa(flows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(env.FCM.H, y, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("sliced/flows="+itoa(flows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DetectSliced(env.Slices, y, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectColdVsPrepared measures the factor-once/detect-many
// win on FatTree(8): "cold" re-assembles and re-factors HᵀH on every
// call (the historical per-period cost), "prepared" reuses the
// factorization a Detector computed once — the steady-state cost of a
// production monitor. The prepared path must be >= 5x faster.
func BenchmarkDetectColdVsPrepared(b *testing.B) {
	top, err := topo.ByName("fattree8")
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := experiment.PairSubset(top, 480)
	if err != nil {
		b.Fatal(err)
	}
	env, err := experiment.NewEnvOn(experiment.Config{Seed: 11, PacketsPerFlow: 100}, top, pairs)
	if err != nil {
		b.Fatal(err)
	}
	y, err := env.Observe(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Detect(env.FCM.H, y, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		det, err := core.NewDetector(env.FCM.H, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectTelemetryOverhead measures what live metrics cost on
// the unified System.Run hot path: the same prepared engines and the
// same observation, wired first to a no-op registry (time.Now reads
// still happen; metric updates drop at a single branch) and then to a
// live one (atomic counter/histogram updates). The acceptance budget
// for the delta is <2%.
func BenchmarkDetectTelemetryOverhead(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 21})
	sys, err := env.System()
	if err != nil {
		b.Fatal(err)
	}
	y, err := env.Observe(0)
	if err != nil {
		b.Fatal(err)
	}
	obs := foces.Observation{Vector: y}
	for _, arm := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"nop", telemetry.NewNop()},
		{"enabled", telemetry.New()},
	} {
		b.Run(arm.name, func(b *testing.B) {
			sys.EnableTelemetry(arm.reg)
			if _, err := sys.Run(obs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Run(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectSlicedColdVsPreparedParallel measures the sliced
// analogues on FatTree(8): cold sequential per-slice re-factoring
// (historical DetectSliced), the prepared engine run sequentially
// (factor-once win alone), and the prepared engine over its
// GOMAXPROCS worker pool (the production path).
func BenchmarkDetectSlicedColdVsPreparedParallel(b *testing.B) {
	top, err := topo.ByName("fattree8")
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := experiment.PairSubset(top, 480)
	if err != nil {
		b.Fatal(err)
	}
	env, err := experiment.NewEnvOn(experiment.Config{Seed: 12, PacketsPerFlow: 100}, top, pairs)
	if err != nil {
		b.Fatal(err)
	}
	y, err := env.Observe(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DetectSliced(env.Slices, y, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sd, err := core.NewSlicedDetector(env.Slices, env.FCM.NumRules(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("prepared-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sd.DetectSequential(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sd.Detect(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectBatchVsLoop measures the batched multi-RHS detection
// path against the equivalent per-window loop on the same prepared
// engine: a backlog of windows solved as columns of one triangular
// solve versus one solve per window.
func BenchmarkDetectBatchVsLoop(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 23})
	const windows = 16
	ys := make([][]float64, windows)
	for i := range ys {
		y, err := env.Observe(0)
		if err != nil {
			b.Fatal(err)
		}
		ys[i] = y
	}
	d, err := core.NewDetector(env.FCM.H, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, y := range ys {
				if _, err := d.Detect(y); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.DetectBatch(ys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectPrepareSerialVsParallel measures baseline preparation
// (full Gram + Cholesky plus all per-slice engines) under the serial
// reference kernels and the parallel blocked kernels.
func BenchmarkDetectPrepareSerialVsParallel(b *testing.B) {
	top, err := topo.ByName("fattree8")
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := experiment.PairSubset(top, 480)
	if err != nil {
		b.Fatal(err)
	}
	env, err := experiment.NewEnvOn(experiment.Config{Seed: 13, PacketsPerFlow: 100}, top, pairs)
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name string
		opts matrix.KernelOptions
	}{
		{"serial", matrix.KernelOptions{Serial: true}},
		{"parallel", matrix.KernelOptions{}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			prev := matrix.SetKernelDefaults(arm.opts)
			defer matrix.SetKernelDefaults(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewDetector(env.FCM.H, core.Options{}); err != nil {
					b.Fatal(err)
				}
				if _, err := core.NewSlicedDetector(env.Slices, env.FCM.NumRules(), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Solver compares the least-squares backends on the
// same system (DESIGN.md ablation: Cholesky normal equations vs
// conjugate gradient vs Householder QR).
func BenchmarkAblation_Solver(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "stanford", Seed: 7})
	y, err := env.Observe(0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.SolveNormalEquations(env.FCM.H, y, matrix.LeastSquaresOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.SolveNormalEquationsCG(env.FCM.H, y, matrix.CGOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qr", func(b *testing.B) {
		dense := env.FCM.H.ToDense()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := matrix.LeastSquaresQR(dense, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Gram compares sparse-row Gram assembly against the
// dense equivalent (DESIGN.md ablation: HᵀH assembly strategy).
func BenchmarkAblation_Gram(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "stanford", Seed: 8})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.FCM.H.Gram()
		}
	})
	b.Run("dense", func(b *testing.B) {
		dense := env.FCM.H.ToDense()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dense.Gram()
		}
	})
}

// BenchmarkAblation_AnomalyIndex compares the index denominator
// statistics (DESIGN.md ablation: median vs mean).
func BenchmarkAblation_AnomalyIndex(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 10})
	y, err := env.Observe(0.05)
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []core.Denominator{core.DenomMedian, core.DenomMean} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(env.FCM.H, y, core.Options{Denominator: d}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SliceBuild measures one-time slice construction
// (amortized across detection periods in production).
func BenchmarkAblation_SliceBuild(b *testing.B) {
	env := getEnv(b, experiment.Config{Topology: "fattree4", Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildSlices(env.FCM); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
