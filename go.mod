module foces

go 1.22
