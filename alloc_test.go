// Steady-state allocation regression tests for the pooled streaming
// pipeline. Excluded under the race detector: -race instruments every
// allocation and channel operation, which inflates MemStats counts and
// would make the budgets below meaningless.

//go:build !race

package foces_test

import (
	"context"
	"testing"

	"foces"
	"foces/internal/collector"
)

// serveSteadyStateAllocBudget is the allocations-per-window ceiling
// for System.Serve once the window pool, stamp arrays and vector free
// lists are warm. A pooled window costs a bounded handful of
// allocations (the report's result pointers, the sliced stage's
// per-window result set) independent of rule count; the map-shaped
// path it replaced paid O(rules) per window. fattree4/PairExact
// measures ~120 allocs/window; the ceiling leaves room for scheduler
// noise while still tripping far below the map-era cost.
const serveSteadyStateAllocBudget = 512

// serveSteadyState wires a lock-step assembler+Serve pair over a
// pre-generated snapshot sequence and returns a func that replays one
// window per call (pushing every switch, then receiving the verdict).
func serveSteadyState(tb testing.TB, windows int) (step func(), close func()) {
	gen := newSystem(tb, "fattree4", foces.PairExact)
	switches := sortedSwitchIDs(gen)
	seq := serveTestWindows(tb, gen, windows, -1, -1, switches[0], 7)

	sys := newSystem(tb, "fattree4", foces.PairExact)
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{
		RuleSpace: len(sys.FCM().Rules),
	})
	asm.SetEpoch(sys.Epoch())
	reports, err := sys.Serve(context.Background(), foces.StreamConfig{Windows: asm.Windows()})
	if err != nil {
		tb.Fatal(err)
	}
	w := 0
	step = func() {
		for _, sw := range switches {
			if err := asm.Push(collector.Update{Switch: sw, Counters: seq[w][sw]}); err != nil {
				tb.Fatalf("window %d switch %d: %v", w, sw, err)
			}
		}
		// Window 0 primes baselines; Serve emits no verdict for it.
		if w > 0 {
			sr := <-reports
			if sr.Err != nil {
				tb.Fatalf("window %d: %v", w, sr.Err)
			}
		}
		w++
	}
	return step, func() { asm.Close() }
}

// TestServeSteadyStateAllocs is the allocation regression gate on the
// streaming hot path: after warmup, one full window through
// WindowAssembler + System.Serve (dense delta accumulation, pooled
// window, pooled counter vector, batch scratch) must stay under the
// per-window allocation budget.
func TestServeSteadyStateAllocs(t *testing.T) {
	const (
		warmup = 6
		runs   = 24
	)
	// 1 priming window + manual warmup + AllocsPerRun's untimed
	// warm-up call + the measured runs.
	step, done := serveSteadyState(t, 2+warmup+runs)
	defer done()
	step() // priming
	for i := 0; i < warmup; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(runs, step)
	t.Logf("steady state: %.1f allocs/window (budget %d)", allocs, serveSteadyStateAllocBudget)
	if allocs > serveSteadyStateAllocBudget {
		t.Errorf("System.Serve allocated %.1f times per window; budget is %d", allocs, serveSteadyStateAllocBudget)
	}
}

// BenchmarkServeSteadyState drives the same warm lock-step pipeline
// for profiling; `make pprof-stream` runs it with -memprofile to
// archive where the remaining steady-state allocations come from.
func BenchmarkServeSteadyState(b *testing.B) {
	const warmup = 6
	step, done := serveSteadyState(b, 1+warmup+b.N)
	defer done()
	step() // priming
	for i := 0; i < warmup; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
