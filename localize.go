package foces

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"foces/internal/core"
	"foces/internal/probe"
)

// This file wires the active-probe localization subsystem
// (internal/probe) into the Run → Report surface. Detection answers
// "is forwarding anomalous"; localization answers "which rule on which
// switch". When an Observation carries a LocalizeConfig and the
// window's verdict is anomalous, Run takes the suspect set (the sliced
// engine's ranking, or the full engine's error-mass attribution),
// synthesizes test probes from the FCM's symbolic flow classes,
// injects them through the data plane under a probe budget, and
// attaches the ranked culprit report to Report.Localization. A nil
// LocalizeConfig skips all of it — the detection path is untouched.

// DefaultMaxSuspects is how many top error-mass switches seed the
// probe suspect set when the sliced engine produced no ranking of its
// own.
const DefaultMaxSuspects = 4

// ProbeInjector injects one synthesized probe into the data plane and
// reports the counter movement it caused. The default implementation
// probes the system's own simulated network; an OpenFlow deployment
// would implement it over PacketOut + paired flow-stats reads.
type ProbeInjector = probe.Injector

// ProbeSpec is one synthesized test probe (flow class, concrete
// header, injection point, expected rule history).
type ProbeSpec = probe.Spec

// ProbeObservation is what an injector measured for one probe.
type ProbeObservation = probe.Observation

// ProbeCulprit is one accused rule in the ranked localization report.
type ProbeCulprit = probe.Culprit

// ProbeOutcome is the probe subsystem's raw localization outcome,
// embedded in Localization.
type ProbeOutcome = probe.Outcome

// ProbeBudget returns the probe budget localization grants a suspect
// rule set of the given size: ceil(log2(n)) + 2.
func ProbeBudget(suspectRules int) int { return probe.Budget(suspectRules) }

// NewProbeInjector builds the default dataplane-backed probe injector
// over a network — what a nil LocalizeConfig.Injector resolves to,
// exported for callers probing a network other than the system's own.
func NewProbeInjector(net *Network, rng *rand.Rand) ProbeInjector {
	return probe.NewNetworkInjector(net, rng)
}

// LocalizeConfig opts a Run into active-probe localization. The zero
// value of every field selects a sensible default; the nil pointer
// disables localization entirely (and costs the detection path
// nothing).
type LocalizeConfig struct {
	// Injector overrides how probes reach the data plane. Nil probes
	// the system's own network directly.
	Injector ProbeInjector
	// MaxProbes caps probes per localization; zero grants
	// ProbeBudget(|suspect rules|).
	MaxProbes int
	// Volume is the packet count per probe (zero: probe.DefaultVolume).
	Volume uint64
	// Deadline bounds each probe's inject-and-read round trip (zero:
	// probe.DefaultDeadline).
	Deadline time.Duration
	// MinConfidence is the accusation confidence at which probing stops
	// (zero: probe.DefaultMinConfidence).
	MinConfidence float64
	// MaxSuspects caps how many switches seed the suspect set when it
	// is derived from full-engine error attribution rather than the
	// sliced ranking (zero: DefaultMaxSuspects).
	MaxSuspects int
	// Seed makes the default injector's loss draws deterministic.
	Seed int64
}

// Localization is the ranked culprit report a localizing Run attaches
// to its Report. It embeds the probe subsystem's outcome; Error is set
// (and the rest zero-valued) when probing itself failed — the
// detection verdict in the surrounding Report stands either way.
type Localization struct {
	probe.Outcome
	// Error describes a localization failure (no suspects, injector
	// breakdown); empty on success.
	Error string `json:"error,omitempty"`
}

// maybeLocalize runs active-probe localization for an anomalous report
// when the observation opted in. Called under baselineMu's read side,
// after the detection stages have filled the report; it sets
// rep.Localization and rep.Timings.Localize (which the caller folds
// into Total).
func (s *System) maybeLocalize(obs Observation, rep *Report) {
	if obs.Localize == nil || !rep.Anomalous {
		return
	}
	t0 := time.Now()
	loc := Localization{}
	out, err := s.localizeLocked(obs.Localize, rep)
	loc.Outcome = out
	if err != nil {
		loc.Error = err.Error()
	}
	rep.Timings.Localize = time.Since(t0)
	rep.Localization = &loc
	s.recordLocalization(&loc)
}

// localizeLocked builds the probe localizer over the current baseline
// and runs it against the report's suspect set.
func (s *System) localizeLocked(cfg *LocalizeConfig, rep *Report) (probe.Outcome, error) {
	suspects, ruleErr := s.suspectSet(cfg, rep)
	if len(suspects) == 0 {
		return probe.Outcome{}, fmt.Errorf("foces: localization has no suspect set (no sliced ranking and no full-engine delta)")
	}
	inj := cfg.Injector
	if inj == nil {
		inj = probe.NewNetworkInjector(s.network, rand.New(rand.NewSource(cfg.Seed+1)))
	}
	loc, err := probe.New(s.fcm, inj, probe.Config{
		MaxProbes:     cfg.MaxProbes,
		Volume:        cfg.Volume,
		Deadline:      cfg.Deadline,
		MinConfidence: cfg.MinConfidence,
	})
	if err != nil {
		return probe.Outcome{}, err
	}
	return loc.Localize(context.Background(), suspects, ruleErr)
}

// suspectSet resolves the switch suspect set and per-rule error mass a
// localization starts from: the sliced engine's ranking unioned with
// the top error-mass switches from the residual vector
// (core.AttributeDelta over Δ = |Y' − Ŷ|), so the set covers both the
// hops whose counters moved and the switch whose rule lost the
// traffic.
func (s *System) suspectSet(cfg *LocalizeConfig, rep *Report) ([]SwitchID, []float64) {
	// Fold every engine's residual vector into one per-rule error mass,
	// keeping each rule's largest residual across engines. The full
	// engine's global fit can absorb an anomaly that shared aggregate
	// rules let it re-attribute across co-riding flows, while the same
	// anomaly shows up hard in the misfitting switch's slice-local
	// residual — and vice versa on windows where only the full engine
	// ran. Taking the max keeps whichever engine actually saw the mass.
	var ruleErr []float64
	fold := func(rid int, d float64) {
		if ruleErr == nil {
			ruleErr = make([]float64, s.fcm.NumRules())
		}
		if d < 0 {
			d = -d
		}
		if rid >= 0 && rid < len(ruleErr) && d > ruleErr[rid] {
			ruleErr[rid] = d
		}
	}
	if rep.Full != nil {
		for rid, d := range rep.Full.Delta {
			fold(rid, d)
		}
	}
	if rep.Partial != nil {
		// The partial delta is positional over the reachable rows;
		// scatter it back to global rule IDs via PresentRows.
		for i, rid := range rep.Partial.PresentRows {
			if i < len(rep.Partial.Result.Delta) {
				fold(rid, rep.Partial.Result.Delta[i])
			}
		}
	}
	if rep.Sliced != nil {
		// Per-slice deltas are positional over each slice's RuleRows.
		bySwitch := make(map[SwitchID]*Slice, len(s.slices))
		for i := range s.slices {
			bySwitch[s.slices[i].Switch] = &s.slices[i]
		}
		for _, sr := range rep.Sliced.PerSwitch {
			sl := bySwitch[sr.Switch]
			if sl == nil {
				continue
			}
			for i, rid := range sl.RuleRows {
				if i >= len(sr.Result.Delta) {
					break
				}
				fold(rid, sr.Result.Delta[i])
			}
		}
	}
	k := cfg.MaxSuspects
	if k <= 0 {
		k = DefaultMaxSuspects
	}
	var ranked []SwitchID
	if ruleErr != nil {
		ranked = core.TopSuspects(core.AttributeDelta(s.fcm, ruleErr), k)
	}
	if len(rep.Suspects) == 0 {
		return ranked, ruleErr
	}
	// Union the sliced ranking with the error-mass ranking: per-slice
	// indices flag the switches whose counters moved (the starved or
	// detoured hops downstream of the compromise), while the residual
	// attribution also implicates the compromised switch itself — its
	// rule counted the traffic its action lost, so the least-squares
	// fit leaves mass on it even when its own slice still fits. Probing
	// needs the culprit's rules in the suspect set, so take both.
	suspects := append([]SwitchID(nil), rep.Suspects...)
	seen := make(map[SwitchID]bool, len(suspects))
	for _, sw := range suspects {
		seen[sw] = true
	}
	for _, sw := range ranked {
		if !seen[sw] {
			suspects = append(suspects, sw)
			seen[sw] = true
		}
	}
	return suspects, ruleErr
}
