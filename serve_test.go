package foces_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"sort"
	"testing"
	"time"

	"foces"
	"foces/internal/collector"
)

// serveTestWindows precomputes per-window cumulative per-switch counter
// snapshots from the simulated data plane, so the polled and streaming
// arms below replay byte-for-byte identical inputs. Events are baked
// into the data: an attack skews every window from attackAt on, and
// resetSw's cumulative counters restart at resetAt.
func serveTestWindows(t testing.TB, gen *foces.System, windows, attackAt, resetAt int, resetSw foces.SwitchID, seed int64) []map[foces.SwitchID]map[int]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rules := gen.FCM().Rules
	freshSwitch := func(sw foces.SwitchID) map[int]uint64 {
		m := make(map[int]uint64)
		for _, r := range rules {
			if r.Switch == sw {
				m[r.ID] = 0
			}
		}
		return m
	}
	cum := make(map[foces.SwitchID]map[int]uint64)
	for _, sw := range gen.Topology().Switches() {
		cum[sw.ID] = freshSwitch(sw.ID)
	}
	seq := make([]map[foces.SwitchID]map[int]uint64, windows)
	for w := 0; w < windows; w++ {
		if w == attackAt {
			if _, err := gen.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
				t.Fatal(err)
			}
		}
		if w == resetAt {
			cum[resetSw] = freshSwitch(resetSw) // reboot: counters restart
		}
		y, err := gen.ObserveCounters(rng, 400)
		if err != nil {
			t.Fatal(err)
		}
		for rid, v := range y {
			if v > 0 {
				cum[rules[rid].Switch][rid] += uint64(v + 0.5)
			}
		}
		snap := make(map[foces.SwitchID]map[int]uint64, len(cum))
		for sw, counters := range cum {
			c := make(map[int]uint64, len(counters))
			for rid, v := range counters {
				c[rid] = v
			}
			snap[sw] = c
		}
		seq[w] = snap
	}
	return seq
}

func sortedSwitchIDs(sys *foces.System) []foces.SwitchID {
	ids := make([]foces.SwitchID, 0, len(sys.Topology().Switches()))
	for _, sw := range sys.Topology().Switches() {
		ids = append(ids, sw.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// gobReport canonicalizes a Report for byte comparison: timings are the
// only nondeterministic field, and gob (unlike JSON) round-trips the
// +Inf anomaly indices a zero-median window produces.
func gobReport(t *testing.T, rep foces.Report) []byte {
	t.Helper()
	rep.Timings = foces.RunTimings{}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func nextStreamReport(t *testing.T, ch <-chan foces.StreamReport) foces.StreamReport {
	t.Helper()
	select {
	case sr, ok := <-ch:
		if !ok {
			t.Fatal("report channel closed early")
		}
		return sr
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a stream report")
	}
	panic("unreachable")
}

func modifyFirstRule(t *testing.T, sys *foces.System) {
	t.Helper()
	r := sys.Controller().Rules()[0]
	if _, err := sys.ModifyRule(r.ID, r.Priority+1, r.Match, r.Action); err != nil {
		t.Fatal(err)
	}
}

// TestServeMatchesPolledRun is the equivalence gate at the API layer:
// the same snapshot sequence — spanning an attack, a silent switch, a
// counter reset and a rule-churn epoch bump — must yield byte-identical
// reports whether replayed through the legacy poll-then-Run loop or
// pushed through WindowAssembler + Serve.
func TestServeMatchesPolledRun(t *testing.T) {
	const (
		windows  = 10
		silentAt = 3
		attackAt = 5
		resetAt  = 6
		churnAt  = 7
	)
	gen := newSystem(t, "fattree4", foces.PairExact)
	switches := sortedSwitchIDs(gen)
	silent := switches[len(switches)/2]
	resetSw := switches[len(switches)/3]
	seq := serveTestWindows(t, gen, windows, attackAt, resetAt, resetSw, 11)

	// Polled arm: DeltaTracker + System.Run, mirroring RobustCollector's
	// merge (ascending switches; resets and unprimed switches go
	// missing; straddling windows dated by their oldest baseline epoch).
	sysP := newSystem(t, "fattree4", foces.PairExact)
	tracker := collector.NewDeltaTracker()
	tracker.SetEpoch(sysP.Epoch())
	var want [][]byte
	for w := 0; w < windows; w++ {
		if w == churnAt {
			modifyFirstRule(t, sysP)
			tracker.SetEpoch(sysP.Epoch())
		}
		deltas := make(map[int]uint64)
		var missing []foces.SwitchID
		epoch := sysP.Epoch()
		for _, sw := range switches {
			if w == silentAt && sw == silent {
				tracker.Forget(sw)
				missing = append(missing, sw)
				continue
			}
			delta, reset, primed, from, straddles := tracker.AdvanceEpoch(sw, seq[w][sw])
			if reset || !primed {
				missing = append(missing, sw)
				continue
			}
			if straddles && from < epoch {
				epoch = from
			}
			for rid, v := range delta {
				deltas[rid] = v
			}
		}
		if len(deltas) == 0 {
			continue // priming window: nothing to detect on
		}
		rep, err := sysP.Run(foces.Observation{Counters: deltas, RunOptions: foces.RunOptions{Missing: missing, Epoch: epoch}})
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		want = append(want, gobReport(t, rep))
	}

	// Streaming arm: identical snapshots pushed through the assembler,
	// verdicts consumed from Serve. Lock-step (one report read per
	// window) so the churn epoch bump lands between the same windows.
	sysS := newSystem(t, "fattree4", foces.PairExact)
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{WindowBuffer: windows + 2})
	asm.SetEpoch(sysS.Epoch())
	reports, err := sysS.Serve(context.Background(), foces.StreamConfig{Windows: asm.Windows()})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	for w := 0; w < windows; w++ {
		if w == churnAt {
			modifyFirstRule(t, sysS)
			asm.SetEpoch(sysS.Epoch())
		}
		for _, sw := range switches {
			if w == silentAt && sw == silent {
				asm.Forget(sw)
				asm.MarkMissing(sw)
				continue
			}
			counters := make(map[int]uint64, len(seq[w][sw]))
			for rid, v := range seq[w][sw] {
				counters[rid] = v
			}
			if err := asm.Push(collector.Update{Switch: sw, Counters: counters, At: time.Now()}); err != nil {
				t.Fatalf("window %d switch %d: %v", w, sw, err)
			}
		}
		if w == 0 {
			continue // priming window is skipped by Serve
		}
		sr := nextStreamReport(t, reports)
		if sr.Err != nil {
			t.Fatalf("window %d: %v", w, sr.Err)
		}
		got = append(got, gobReport(t, sr.Report))
	}
	asm.Close()
	if _, open := <-reports; open {
		t.Fatal("report channel still open after assembler close")
	}

	if len(got) != len(want) {
		t.Fatalf("streamed %d reports, polled %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("report %d diverged between the polled and streamed paths", i)
		}
	}
}

// TestServeBatchesBackloggedWindows checks that when the consumer falls
// behind, Serve groups pending windows into shared RunBatch calls and
// still emits one report per window, in order.
func TestServeBatchesBackloggedWindows(t *testing.T) {
	const windows = 8
	gen := newSystem(t, "fattree4", foces.PairExact)
	switches := sortedSwitchIDs(gen)
	seq := serveTestWindows(t, gen, windows, -1, -1, 0, 13)

	sys := newSystem(t, "fattree4", foces.PairExact)
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{WindowBuffer: windows + 1})
	// Push every window before Serve starts consuming: the backlog is
	// the batching trigger.
	for w := 0; w < windows; w++ {
		for _, sw := range switches {
			counters := make(map[int]uint64, len(seq[w][sw]))
			for rid, v := range seq[w][sw] {
				counters[rid] = v
			}
			if err := asm.Push(collector.Update{Switch: sw, Counters: counters}); err != nil {
				t.Fatal(err)
			}
		}
	}
	asm.Close()
	reports, err := sys.Serve(context.Background(), foces.StreamConfig{Windows: asm.Windows(), BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	var (
		count      int
		maxBatched int
		lastSeq    uint64
	)
	for sr := range reports {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Window <= lastSeq {
			t.Fatalf("reports out of window order: %d after %d", sr.Window, lastSeq)
		}
		lastSeq = sr.Window
		if sr.Batched > maxBatched {
			maxBatched = sr.Batched
		}
		count++
	}
	if count != windows-1 {
		t.Fatalf("got %d reports, want %d (priming window skipped)", count, windows-1)
	}
	if maxBatched < 2 {
		t.Fatalf("backlogged windows never batched (max batch %d)", maxBatched)
	}
}

// TestServeSamplerFeedback closes the loop end to end: clean verdicts
// flowing out of Serve feed the adaptive sampler, which backs stable
// switches off every-window sampling until the configured fraction cap.
func TestServeSamplerFeedback(t *testing.T) {
	const windows = 12
	gen := newSystem(t, "fattree4", foces.PairExact)
	switches := sortedSwitchIDs(gen)
	seq := serveTestWindows(t, gen, windows, -1, -1, 0, 17)

	sys := newSystem(t, "fattree4", foces.PairExact)
	sampler := foces.NewAdaptiveSampler(switches, foces.SamplerConfig{
		StableAfter:      1,
		MaxInterval:      4,
		MaxBackedOffFrac: 0.5,
	})
	asm := collector.NewWindowAssembler(switches, collector.StreamConfig{Sampler: sampler, WindowBuffer: windows + 1})
	reports, err := sys.Serve(context.Background(), foces.StreamConfig{
		Windows: asm.Windows(),
		Sampler: sampler,
	})
	if err != nil {
		t.Fatal(err)
	}
	minDue := len(switches)
	for w := 0; w < windows; w++ {
		due := asm.Due()
		if len(due) < minDue {
			minDue = len(due)
		}
		for _, sw := range due {
			counters := make(map[int]uint64, len(seq[w][sw]))
			for rid, v := range seq[w][sw] {
				counters[rid] = v
			}
			if err := asm.Push(collector.Update{Switch: sw, Counters: counters}); err != nil {
				t.Fatal(err)
			}
		}
		if w == 0 {
			continue
		}
		sr := nextStreamReport(t, reports)
		if sr.Err != nil {
			t.Fatalf("window %d: %v", w, sr.Err)
		}
		if sr.Report.Anomalous {
			t.Fatalf("window %d: clean traffic flagged anomalous", w)
		}
	}
	cap := len(switches) / 2
	if st := sampler.Stats(); st.BackedOff != cap {
		t.Fatalf("backed off %d switches, want the cap %d of %d", st.BackedOff, cap, len(switches))
	}
	if minDue >= len(switches) {
		t.Fatal("due set never shrank below the full switch set")
	}
}

// TestServeCancelClosesReports checks that cancelling the context shuts
// the report stream down promptly even with no windows arriving.
func TestServeCancelClosesReports(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	asm := foces.NewWindowAssembler(sortedSwitchIDs(sys), foces.AssemblerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	reports, err := sys.Serve(ctx, foces.StreamConfig{Windows: asm.Windows()})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-reports:
		if open {
			t.Fatal("report delivered after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("report channel not closed after cancellation")
	}
	asm.Close()
}

// TestServeRequiresWindows pins the config validation.
func TestServeRequiresWindows(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	if _, err := sys.Serve(context.Background(), foces.StreamConfig{}); err == nil {
		t.Fatal("Serve accepted a nil window stream")
	}
}
