package foces_test

import (
	"fmt"
	"math/rand"
	"testing"

	"foces"
)

// The deprecated Detect* wrappers are contractually one-line shims
// over Run: for every dispatch path, the wrapper's return value must
// byte-equal the corresponding field of the Run(Observation) report,
// and — because the wrappers route through Run — every wrapper call
// must land in the telemetry verdict ring exactly like a direct Run,
// so focesd /status can never miss a wrapper-path verdict.

// repr renders an engine outcome for byte-level comparison. %#v walks
// every exported field (engine outcomes are plain data) and — unlike
// JSON — represents the +Inf anomaly index an attacked window can
// produce.
func repr(v any) string { return fmt.Sprintf("%#v", v) }

func TestWrappersByteEqualRun(t *testing.T) {
	type scenario struct {
		name   string
		attack bool
	}
	for _, sc := range []scenario{{"clean", false}, {"attacked", true}} {
		t.Run(sc.name, func(t *testing.T) {
			sys := newSystem(t, "fattree4", foces.PairExact)
			sys.EnableTelemetry(foces.NewTelemetryRegistry())
			rng := rand.New(rand.NewSource(31))
			if sc.attack {
				if _, err := sys.InjectRandomAttack(rng, foces.AttackPortSwap); err != nil {
					t.Fatal(err)
				}
			}
			y, err := sys.ObserveCounters(rng, 1000)
			if err != nil {
				t.Fatal(err)
			}
			counters := sys.Network().CollectCounters()
			missing := []foces.SwitchID{sys.Slices()[0].Switch}

			type equiv struct {
				name    string
				wrapper func() (any, error)
				run     func() (any, error)
			}
			cases := []equiv{
				{
					name: "Detect",
					wrapper: func() (any, error) {
						r, err := sys.Detect(y, foces.DetectOptions{})
						return r, err
					},
					run: func() (any, error) {
						rep, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Epoch: sys.Epoch(), Mode: foces.ModeFull}})
						if err != nil {
							return nil, err
						}
						return *rep.Full, nil
					},
				},
				{
					name: "DetectSliced",
					wrapper: func() (any, error) {
						r, err := sys.DetectSliced(y, foces.DetectOptions{})
						return r, err
					},
					run: func() (any, error) {
						rep, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Epoch: sys.Epoch(), Mode: foces.ModeSliced}})
						if err != nil {
							return nil, err
						}
						return *rep.Sliced, nil
					},
				},
				{
					name: "DetectWithMissing",
					wrapper: func() (any, error) {
						r, err := sys.DetectWithMissing(counters, missing, foces.DetectOptions{})
						return r, err
					},
					run: func() (any, error) {
						rep, err := sys.Run(foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Missing: missing, Epoch: sys.Epoch(), Mode: foces.ModeFull}})
						if err != nil {
							return nil, err
						}
						return *rep.Partial, nil
					},
				},
				{
					name: "DetectSlicedWithMissing",
					wrapper: func() (any, error) {
						r, err := sys.DetectSlicedWithMissing(counters, missing, foces.DetectOptions{})
						return r, err
					},
					run: func() (any, error) {
						rep, err := sys.Run(foces.Observation{Counters: counters, RunOptions: foces.RunOptions{Missing: missing, Epoch: sys.Epoch(), Mode: foces.ModeSliced}})
						if err != nil {
							return nil, err
						}
						return *rep.Sliced, nil
					},
				},
			}
			for _, c := range cases {
				ringBefore := len(sys.RecentRuns())
				w, err := c.wrapper()
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if got := len(sys.RecentRuns()); got != ringBefore+1 {
					t.Fatalf("%s bypassed the verdict ring: %d events before, %d after", c.name, ringBefore, got)
				}
				r, err := c.run()
				if err != nil {
					t.Fatalf("%s (run): %v", c.name, err)
				}
				if wb, rb := repr(w), repr(r); wb != rb {
					t.Fatalf("%s diverged from Run:\nwrapper: %s\nrun:     %s", c.name, wb, rb)
				}
			}
		})
	}
}

// DetectReconciled needs churn between the snapshot and the call, so
// it gets its own scenario rather than a row above.
func TestDetectReconciledByteEqualsRun(t *testing.T) {
	sys := newSystem(t, "fattree4", foces.PairExact)
	sys.EnableTelemetry(foces.NewTelemetryRegistry())
	rng := rand.New(rand.NewSource(33))
	yOld, err := sys.ObserveCounters(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	from := sys.Epoch()
	var victim foces.Rule
	for _, fl := range sys.FCM().Flows {
		if len(fl.RuleIDs) >= 3 {
			victim = sys.FCM().Rules[fl.RuleIDs[0]]
			break
		}
	}
	if _, err := sys.RemoveRule(victim.ID); err != nil {
		t.Fatal(err)
	}
	ringBefore := len(sys.RecentRuns())
	legacy, err := sys.DetectReconciled(yOld, from)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.RecentRuns()); got != ringBefore+1 {
		t.Fatalf("DetectReconciled bypassed the verdict ring: %d events before, %d after", ringBefore, got)
	}
	// The wrapper pads a legitimately short pre-churn vector; mirror it.
	y := yOld
	if space := sys.FCM().NumRules(); len(y) < space {
		padded := make([]float64, space)
		copy(padded, y)
		y = padded
	}
	rep, err := sys.Run(foces.Observation{Vector: y, RunOptions: foces.RunOptions{Epoch: from, Mode: foces.ModeSliced}})
	if err != nil {
		t.Fatal(err)
	}
	if wb, rb := repr(legacy), repr(*rep.Sliced); wb != rb {
		t.Fatalf("DetectReconciled diverged from Run:\nwrapper: %s\nrun:     %s", wb, rb)
	}
}
